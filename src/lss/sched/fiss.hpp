// Fixed Increase Self-Scheduling (Philip & Das 1997): chunk sizes
// *grow* by a fixed bump B across a fixed number of stages sigma,
// trading late-loop balance for fewer small early messages:
//
//   C_0 = floor(I / (X p)),  B = floor(2I(1 - sigma/X) / (p sigma (sigma-1)))
//
// with X a user parameter (suggested X = sigma + 2). The final stage
// absorbs the integer-rounding residue — stage sigma-1 grants
// floor(R/p), which is what makes the paper's Table 1 row
// (50 50 50 50 | 83 ... | 117 ...) sum to exactly I.
#pragma once

#include "lss/sched/scheme.hpp"

namespace lss::sched {

class FissScheduler final : public ChunkScheduler {
 public:
  /// `stages` = sigma >= 1; `x` <= 0 selects the suggested X = sigma+2.
  FissScheduler(Index total, int num_pes, int stages = 3, int x = -1);

  std::string name() const override;
  int stages() const { return sigma_; }
  int x() const { return x_; }
  /// The fixed bump B (0 when sigma < 2).
  Index bump() const { return bump_; }

 protected:
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  int sigma_;
  int x_;
  Index first_chunk_ = 1;
  Index bump_ = 0;
  int stage_ = 0;
  Index stage_left_ = 0;
  Index stage_chunk_ = 0;
};

}  // namespace lss::sched
