#include "lss/sched/fss.hpp"

#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss::sched {

FssScheduler::FssScheduler(Index total, int num_pes, double alpha,
                           Rounding rounding)
    : ChunkScheduler(total, num_pes), alpha_(alpha), rounding_(rounding) {
  LSS_REQUIRE(alpha > 0.0, "alpha must be positive");
}

std::string FssScheduler::name() const {
  // Built with += (not operator+ on a temporary) to sidestep GCC 12's
  // -Wrestrict false positive (GCC bug 105651).
  std::string n = "fss(alpha=";
  n += fmt_fixed(alpha_, 1);
  if (rounding_ != Rounding::Ceil) {
    n += ',';
    n += to_string(rounding_);
  }
  n += ')';
  return n;
}

Index FssScheduler::propose_chunk(int /*pe*/) {
  if (stage_left_ == 0) {
    const double p = static_cast<double>(num_pes());
    stage_chunk_ = apply_rounding(
        static_cast<double>(remaining()) / (alpha_ * p), rounding_);
    if (stage_chunk_ < 1) stage_chunk_ = 1;
    stage_left_ = num_pes();
  }
  return stage_chunk_;
}

void FssScheduler::on_granted(int /*pe*/, Index /*granted*/) {
  --stage_left_;
}

}  // namespace lss::sched
