#include "lss/sched/factory.hpp"

#include "lss/sched/css.hpp"
#include "lss/sched/fiss.hpp"
#include "lss/sched/fss.hpp"
#include "lss/sched/gss.hpp"
#include "lss/sched/sss.hpp"
#include "lss/sched/static_sched.hpp"
#include "lss/sched/tfss.hpp"
#include "lss/sched/tss.hpp"
#include "lss/sched/wf.hpp"
#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss::sched {

namespace {

Rounding parse_rounding(std::string_view v) {
  const std::string s = to_lower(v);
  if (s == "ceil") return Rounding::Ceil;
  if (s == "floor") return Rounding::Floor;
  if (s == "nearest") return Rounding::Nearest;
  LSS_REQUIRE(false, "unknown rounding mode: '" + s + "'");
  return Rounding::Ceil;
}

std::vector<double> parse_weights(std::string_view v) {
  std::vector<double> out;
  for (const std::string& part : split(v, ';'))
    out.push_back(parse_double(part));
  return out;
}

// Parameter keys each scheme actually consumes. A key another scheme
// understands is still an error here — "gss:alpha=2" silently doing
// nothing is exactly the misconfiguration this catches.
std::vector<std::string> allowed_keys(const std::string& kind) {
  if (kind == "css" || kind == "gss") return {"k"};
  if (kind == "tss" || kind == "tfss") return {"f", "l"};
  if (kind == "fss") return {"alpha", "rounding"};
  if (kind == "fiss") return {"sigma", "x"};
  if (kind == "sss") return {"alpha", "k"};
  if (kind == "wf") return {"weights", "alpha", "rounding"};
  return {};  // static, ss
}

/// Parse result, local to one make_scheme/validate_scheme call.
struct Parsed {
  std::string kind;
  Index k = 1;
  Index first = -1;
  Index last = -1;
  double alpha = 2.0;
  int sigma = 3;
  int x = -1;
  Rounding rounding = Rounding::Ceil;
  std::vector<double> weights;
};

Parsed parse(std::string_view spec) {
  Parsed out;
  const std::string s{trim(spec)};
  const auto colon = s.find(':');
  out.kind = to_lower(trim(s.substr(0, colon)));
  LSS_REQUIRE(!out.kind.empty(),
              "empty scheme spec; known schemes: " +
                  join(known_schemes(), ", "));

  // Validate the kind before touching parameters so the error names
  // every scheme the factory understands.
  const auto known = known_schemes();
  bool kind_ok = false;
  for (const std::string& name : known) kind_ok = kind_ok || name == out.kind;
  LSS_REQUIRE(kind_ok, "unknown scheme: '" + out.kind +
                           "'; known schemes: " + join(known, ", "));

  if (colon != std::string::npos) {
    const std::vector<std::string> accepted = allowed_keys(out.kind);
    for (const std::string& kv : split(s.substr(colon + 1), ',')) {
      const auto eq = kv.find('=');
      LSS_REQUIRE(eq != std::string::npos,
                  "malformed parameter (want key=value): '" + kv + "'");
      const std::string key = to_lower(trim(kv.substr(0, eq)));
      const std::string value{trim(kv.substr(eq + 1))};
      bool key_ok = false;
      for (const std::string& k : accepted) key_ok = key_ok || k == key;
      LSS_REQUIRE(key_ok,
                  "scheme '" + out.kind + "' does not accept parameter '" +
                      key + "'" +
                      (accepted.empty()
                           ? " (it takes no parameters)"
                           : " (accepts: " + join(accepted, ", ") + ")"));
      if (key == "k") {
        out.k = parse_int(value);
      } else if (key == "f") {
        out.first = parse_int(value);
      } else if (key == "l") {
        out.last = parse_int(value);
      } else if (key == "alpha") {
        out.alpha = parse_double(value);
      } else if (key == "sigma") {
        out.sigma = static_cast<int>(parse_int(value));
      } else if (key == "x") {
        out.x = static_cast<int>(parse_int(value));
      } else if (key == "rounding") {
        out.rounding = parse_rounding(value);
      } else if (key == "weights") {
        out.weights = parse_weights(value);
      }
    }
  }
  return out;
}

}  // namespace

std::unique_ptr<ChunkScheduler> make_scheme(std::string_view spec,
                                            Index total, int num_pes) {
  const Parsed p = parse(spec);
  if (p.kind == "static")
    return std::make_unique<StaticScheduler>(total, num_pes);
  if (p.kind == "ss") return std::make_unique<CssScheduler>(total, num_pes, 1);
  if (p.kind == "css")
    return std::make_unique<CssScheduler>(total, num_pes, p.k);
  if (p.kind == "gss")
    return std::make_unique<GssScheduler>(total, num_pes, p.k);
  if (p.kind == "tss")
    return std::make_unique<TssScheduler>(total, num_pes, p.first, p.last);
  if (p.kind == "fss")
    return std::make_unique<FssScheduler>(total, num_pes, p.alpha,
                                          p.rounding);
  if (p.kind == "fiss")
    return std::make_unique<FissScheduler>(total, num_pes, p.sigma, p.x);
  if (p.kind == "tfss")
    return std::make_unique<TfssScheduler>(total, num_pes, p.first, p.last);
  if (p.kind == "sss") {
    const double a = p.alpha == 2.0 ? 0.5 : p.alpha;  // scheme default
    return std::make_unique<SssScheduler>(total, num_pes, a, p.k);
  }
  if (p.kind == "wf") {
    std::vector<double> w = p.weights;
    if (w.empty()) w.assign(static_cast<std::size_t>(num_pes), 1.0);
    return std::make_unique<WfScheduler>(total, num_pes, std::move(w),
                                         p.alpha, p.rounding);
  }
  LSS_ASSERT(false, "unreachable: kind validated in parse()");
  return nullptr;
}

void validate_scheme(std::string_view spec) { (void)parse(spec); }

std::string scheme_kind(std::string_view spec) { return parse(spec).kind; }

std::vector<std::string> known_schemes() {
  return {"static", "ss",   "css",  "gss", "tss",
          "fss",    "fiss", "tfss", "sss", "wf"};
}

}  // namespace lss::sched
