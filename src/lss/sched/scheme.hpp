// Simple (power-oblivious) self-scheduling schemes — §2 of the paper.
//
// A ChunkScheduler is the master-side policy: at each scheduling step
// an idle PE requests work and the scheduler hands back a chunk of
// consecutive iterations. The generic step (paper eq. 1):
//
//   R_0 = I,   C_i = f(R_{i-1}, p),   R_i = R_{i-1} - C_i
//
// Concrete schemes differ only in how they propose C_i; the base class
// owns the bookkeeping (cursor, clamping to the remaining count, and
// the guarantee that every granted chunk has size >= 1).
//
// Thread-compatibility: schedulers are driven by a single master
// (simulated or real); they are not internally synchronized.
#pragma once

#include <memory>
#include <string>

#include "lss/support/types.hpp"

namespace lss::sched {

using lss::Index;
using lss::Range;

class ChunkScheduler {
 public:
  /// `total` = I (>= 0), `num_pes` = p (>= 1).
  ChunkScheduler(Index total, int num_pes);
  virtual ~ChunkScheduler() = default;

  ChunkScheduler(const ChunkScheduler&) = delete;
  ChunkScheduler& operator=(const ChunkScheduler&) = delete;

  /// Human-readable scheme name including parameters, e.g. "css(k=16)".
  virtual std::string name() const = 0;

  /// Serve a request from PE `pe` in [0, num_pes). Returns the next
  /// chunk, or an empty range once all iterations are assigned.
  /// Granted chunks are consecutive, non-overlapping and cover
  /// [0, total) exactly across all calls.
  Range next(int pe);

  Index total() const { return total_; }
  int num_pes() const { return num_pes_; }
  Index assigned() const { return cursor_; }
  Index remaining() const { return total_ - cursor_; }
  bool done() const { return cursor_ >= total_; }
  /// Number of non-empty chunks granted so far (scheduling steps N).
  Index steps() const { return steps_; }

 protected:
  /// Chunk size the scheme would like to grant to `pe` given the
  /// current remaining() (> 0 when called). May exceed remaining();
  /// values < 1 are raised to 1 by the base class.
  virtual Index propose_chunk(int pe) = 0;

  /// Notification of what was actually granted (post-clamping) so
  /// stage-based schemes can advance their stage state.
  virtual void on_granted(int pe, Index granted);

 private:
  Index total_;
  int num_pes_;
  Index cursor_ = 0;
  Index steps_ = 0;
};

/// Rounding rule for fractional chunk sizes (FSS and the distributed
/// schemes). The paper's tables mix conventions (see DESIGN.md);
/// Ceil matches the published FSS algorithm.
enum class Rounding { Ceil, Floor, Nearest };

Index apply_rounding(double value, Rounding mode);
std::string to_string(Rounding mode);

}  // namespace lss::sched
