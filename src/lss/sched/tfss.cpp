#include "lss/sched/tfss.hpp"

namespace lss::sched {

TfssScheduler::TfssScheduler(Index total, int num_pes, Index first,
                             Index last)
    : ChunkScheduler(total, num_pes) {
  if (first <= 0 && last <= 0) {
    params_ = tss_params_integer(total, num_pes);
  } else {
    // Delegate the validated integer parameter construction to TSS.
    TssScheduler probe(total, num_pes, first, last);
    params_ = probe.params();
  }
}

void TfssScheduler::begin_stage() {
  const Index p = num_pes();
  Index sum = 0;
  for (Index j = 0; j < p; ++j)
    sum += static_cast<Index>(params_.chunk_at(tss_step_ + j));
  tss_step_ += p;
  if (sum < p) sum = p;  // keep chunks >= 1 deep into the tail
  stage_chunk_ = sum / p;
  stage_extra_ = sum % p;
  stage_left_ = p;
}

Index TfssScheduler::propose_chunk(int /*pe*/) {
  if (stage_left_ == 0) begin_stage();
  // The first (SC_k mod p) chunks of the stage carry the residue.
  const Index served = num_pes() - stage_left_;
  return stage_chunk_ + (served < stage_extra_ ? 1 : 0);
}

void TfssScheduler::on_granted(int /*pe*/, Index /*granted*/) {
  --stage_left_;
}

}  // namespace lss::sched
