// Trapezoid Factoring Self-Scheduling — the paper's new scheme (§4).
//
// FSS's stage structure with TSS's linear ramp: stage k bundles the
// next p chunks of the TSS sequence and splits their sum evenly over
// the p chunks of the stage:
//
//   SC_k = sum of the next p TSS formula chunks
//   C^TFSS_(stage k) = SC_k / p      (per Example 2: 113 81 49 17)
//
// Integer residue SC_k mod p is folded into the first chunks of the
// stage so each stage still assigns exactly SC_k iterations.
#pragma once

#include "lss/sched/scheme.hpp"
#include "lss/sched/tss.hpp"

namespace lss::sched {

class TfssScheduler final : public ChunkScheduler {
 public:
  /// first/last <= 0 selects the TSS defaults F = floor(I/2p), L = 1.
  TfssScheduler(Index total, int num_pes, Index first = -1, Index last = -1);

  std::string name() const override { return "tfss"; }
  const TssParams& tss_params() const { return params_; }

 protected:
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  void begin_stage();

  TssParams params_;
  Index tss_step_ = 0;     ///< consumed positions in the TSS sequence
  Index stage_left_ = 0;   ///< chunks still to grant in this stage
  Index stage_chunk_ = 0;  ///< base chunk of this stage (SC_k / p)
  Index stage_extra_ = 0;  ///< leading chunks that get +1 (SC_k mod p)
};

}  // namespace lss::sched
