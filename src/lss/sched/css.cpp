#include "lss/sched/css.hpp"

#include <cmath>

#include "lss/support/assert.hpp"

namespace lss::sched {

CssScheduler::CssScheduler(Index total, int num_pes, Index chunk_size)
    : ChunkScheduler(total, num_pes), chunk_size_(chunk_size) {
  LSS_REQUIRE(chunk_size >= 1, "chunk size must be at least 1");
}

std::string CssScheduler::name() const {
  if (chunk_size_ == 1) return "ss";
  return "css(k=" + std::to_string(chunk_size_) + ")";
}

Index CssScheduler::propose_chunk(int /*pe*/) { return chunk_size_; }

CssScheduler make_pure_ss(Index total, int num_pes) {
  return CssScheduler(total, num_pes, 1);
}

Index kruskal_weiss_chunk(Index total, int num_pes, double overhead,
                          double iteration_stddev) {
  LSS_REQUIRE(total >= 1, "need at least one iteration");
  LSS_REQUIRE(num_pes >= 1, "need at least one PE");
  LSS_REQUIRE(overhead > 0.0, "scheduling overhead must be positive");
  LSS_REQUIRE(iteration_stddev >= 0.0, "stddev must be non-negative");
  const Index per_pe =
      (total + num_pes - 1) / num_pes;  // never exceed the even split
  if (num_pes == 1) return total;
  if (iteration_stddev == 0.0) return per_pe;  // deterministic loop
  const double p = static_cast<double>(num_pes);
  const double numer = std::sqrt(2.0) * static_cast<double>(total) * overhead;
  const double denom = iteration_stddev * p * std::sqrt(std::log(p));
  const double k = std::pow(numer / denom, 2.0 / 3.0);
  Index out = static_cast<Index>(std::llround(k));
  if (out < 1) out = 1;
  if (out > per_pe) out = per_pe;
  return out;
}

}  // namespace lss::sched
