#include "lss/sched/gss.hpp"

#include "lss/support/assert.hpp"

namespace lss::sched {

GssScheduler::GssScheduler(Index total, int num_pes, Index min_chunk)
    : ChunkScheduler(total, num_pes), min_chunk_(min_chunk) {
  LSS_REQUIRE(min_chunk >= 1, "minimum chunk must be at least 1");
}

std::string GssScheduler::name() const {
  if (min_chunk_ == 1) return "gss";
  return "gss(k=" + std::to_string(min_chunk_) + ")";
}

Index GssScheduler::propose_chunk(int /*pe*/) {
  const Index p = num_pes();
  const Index chunk = (remaining() + p - 1) / p;  // ceil(R / p)
  return chunk < min_chunk_ ? min_chunk_ : chunk;
}

}  // namespace lss::sched
