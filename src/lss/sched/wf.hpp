// Weighted Factoring (Hummel, Schmidt, Uma & Wein 1996): FSS stages,
// but within a stage PE j's chunk is proportional to its fixed
// relative weight w_j (the static processing speed). The paper uses
// WF as the example of a *non-distributed* heterogeneous scheme: the
// weights never react to actual machine load.
#pragma once

#include <vector>

#include "lss/sched/scheme.hpp"

namespace lss::sched {

class WfScheduler final : public ChunkScheduler {
 public:
  /// `weights[j]` > 0 is PE j's relative speed; size must equal p.
  WfScheduler(Index total, int num_pes, std::vector<double> weights,
              double alpha = 2.0, Rounding rounding = Rounding::Ceil);

  std::string name() const override;
  const std::vector<double>& weights() const { return weights_; }

 protected:
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  std::vector<double> weights_;
  double weight_sum_ = 0.0;
  double alpha_;
  Rounding rounding_;
  Index stage_left_ = 0;
  double stage_total_ = 0.0;  ///< R / alpha at stage start
};

}  // namespace lss::sched
