#include "lss/sched/sequence.hpp"

#include "lss/support/assert.hpp"

namespace lss::sched {

std::vector<ChunkGrant> chunk_sequence(ChunkScheduler& scheduler) {
  std::vector<ChunkGrant> out;
  int pe = 0;
  while (!scheduler.done()) {
    const Range r = scheduler.next(pe);
    LSS_ASSERT(!r.empty(), "scheduler granted an empty chunk before done()");
    out.push_back(ChunkGrant{pe, r});
    pe = (pe + 1) % scheduler.num_pes();
  }
  return out;
}

std::vector<Range> chunk_table(ChunkScheduler& scheduler) {
  std::vector<Range> out;
  for (const ChunkGrant& g : chunk_sequence(scheduler))
    out.push_back(g.range);
  return out;
}

std::vector<Index> chunk_sizes(ChunkScheduler& scheduler) {
  std::vector<Index> out;
  for (const ChunkGrant& g : chunk_sequence(scheduler))
    out.push_back(g.range.size());
  return out;
}

std::string format_sizes(const std::vector<Index>& sizes) {
  std::string out;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(sizes[i]);
  }
  return out;
}

}  // namespace lss::sched
