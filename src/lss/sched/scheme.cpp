#include "lss/sched/scheme.hpp"

#include <cmath>

#include "lss/support/assert.hpp"

namespace lss::sched {

ChunkScheduler::ChunkScheduler(Index total, int num_pes)
    : total_(total), num_pes_(num_pes) {
  LSS_REQUIRE(total >= 0, "iteration count must be non-negative");
  LSS_REQUIRE(num_pes >= 1, "need at least one PE");
}

Range ChunkScheduler::next(int pe) {
  LSS_REQUIRE(pe >= 0 && pe < num_pes_, "PE id out of range");
  if (done()) return Range{cursor_, cursor_};
  Index chunk = propose_chunk(pe);
  if (chunk < 1) chunk = 1;
  if (chunk > remaining()) chunk = remaining();
  const Range granted{cursor_, cursor_ + chunk};
  cursor_ += chunk;
  ++steps_;
  on_granted(pe, chunk);
  return granted;
}

void ChunkScheduler::on_granted(int /*pe*/, Index /*granted*/) {}

Index apply_rounding(double value, Rounding mode) {
  LSS_REQUIRE(value >= 0.0, "chunk size cannot be negative");
  switch (mode) {
    case Rounding::Ceil:
      return static_cast<Index>(std::ceil(value));
    case Rounding::Floor:
      return static_cast<Index>(std::floor(value));
    case Rounding::Nearest:
      return static_cast<Index>(std::llround(value));
  }
  LSS_ASSERT(false, "unreachable rounding mode");
  return 0;
}

std::string to_string(Rounding mode) {
  switch (mode) {
    case Rounding::Ceil:
      return "ceil";
    case Rounding::Floor:
      return "floor";
    case Rounding::Nearest:
      return "nearest";
  }
  return "?";
}

}  // namespace lss::sched
