// Factoring Self-Scheduling (Hummel, Schonberg & Flynn 1992):
// iterations are handed out in *stages* of p equal chunks; each stage
// assigns 1/alpha of the remaining work (alpha = 2 suboptimal choice):
//
//   C_stage = round(R / (alpha * p)),  R -= p * C_stage
//
// The canonical rule rounds up; the paper's Table 1 row mixes
// roundings (see DESIGN.md), so the mode is selectable.
#pragma once

#include "lss/sched/scheme.hpp"

namespace lss::sched {

class FssScheduler final : public ChunkScheduler {
 public:
  FssScheduler(Index total, int num_pes, double alpha = 2.0,
               Rounding rounding = Rounding::Ceil);

  std::string name() const override;
  double alpha() const { return alpha_; }
  /// Chunks remaining in the current stage (diagnostic).
  Index stage_left() const { return stage_left_; }

 protected:
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  double alpha_;
  Rounding rounding_;
  Index stage_chunk_ = 0;
  Index stage_left_ = 0;
};

}  // namespace lss::sched
