// Draining helpers: run a scheduler to completion under a fixed
// request order and record the granted chunks. This is what the
// paper's Table 1 shows (requests arriving round-robin, P1..Pp).
#pragma once

#include <vector>

#include "lss/sched/scheme.hpp"

namespace lss::sched {

struct ChunkGrant {
  int pe = 0;
  Range range;
};

/// Round-robin request order (P0, P1, ..., Pp-1, P0, ...) until done.
std::vector<ChunkGrant> chunk_sequence(ChunkScheduler& scheduler);

/// Grant ranges only, in round-robin order — the immutable grant
/// table the lock-free dispatcher (rt/dispatch) indexes with its
/// atomic ticket. Drains the scheduler.
std::vector<Range> chunk_table(ChunkScheduler& scheduler);

/// Just the chunk sizes, in grant order.
std::vector<Index> chunk_sizes(ChunkScheduler& scheduler);

/// Renders sizes as the paper prints them: "125 117 109 ...".
std::string format_sizes(const std::vector<Index>& sizes);

}  // namespace lss::sched
