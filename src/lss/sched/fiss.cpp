#include "lss/sched/fiss.hpp"

#include "lss/support/assert.hpp"

namespace lss::sched {

FissScheduler::FissScheduler(Index total, int num_pes, int stages, int x)
    : ChunkScheduler(total, num_pes),
      sigma_(stages),
      x_(x > 0 ? x : stages + 2) {
  LSS_REQUIRE(stages >= 1, "need at least one stage");
  LSS_REQUIRE(x_ > 0, "X must be positive");
  const Index p = num_pes;
  first_chunk_ = total / (static_cast<Index>(x_) * p);
  if (first_chunk_ < 1) first_chunk_ = 1;
  if (sigma_ >= 2) {
    const double sig = static_cast<double>(sigma_);
    const double numer =
        2.0 * static_cast<double>(total) * (1.0 - sig / static_cast<double>(x_));
    const double denom = static_cast<double>(p) * sig * (sig - 1.0);
    const double b = numer / denom;
    bump_ = b > 0.0 ? static_cast<Index>(b) : 0;  // floor
  }
}

std::string FissScheduler::name() const {
  return "fiss(sigma=" + std::to_string(sigma_) + ",X=" + std::to_string(x_) +
         ")";
}

Index FissScheduler::propose_chunk(int /*pe*/) {
  if (stage_left_ == 0) {
    const bool last_stage = stage_ >= sigma_ - 1;
    if (last_stage) {
      // Final stage (and any overflow stages): split the remainder
      // evenly; the base class clamps the trailing chunk.
      stage_chunk_ = remaining() / num_pes();
      if (stage_chunk_ < 1) stage_chunk_ = 1;
    } else {
      stage_chunk_ = first_chunk_ + static_cast<Index>(stage_) * bump_;
    }
    stage_left_ = num_pes();
  }
  return stage_chunk_;
}

void FissScheduler::on_granted(int /*pe*/, Index /*granted*/) {
  if (--stage_left_ == 0) ++stage_;
}

}  // namespace lss::sched
