// Static scheduling ("S" in Table 1): the iteration space is divided
// into exactly p near-equal chunks, one per request. The baseline
// every self-scheduling scheme is compared against.
#pragma once

#include "lss/sched/scheme.hpp"

namespace lss::sched {

class StaticScheduler final : public ChunkScheduler {
 public:
  StaticScheduler(Index total, int num_pes);

  std::string name() const override { return "static"; }

 protected:
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  Index chunks_granted_ = 0;
};

}  // namespace lss::sched
