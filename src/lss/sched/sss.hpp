// Safe Self-Scheduling (Liu, Saletore & Lewis 1994) — a further
// member of the §2 family: a "safe" fraction alpha of the average
// per-PE share is allocated in the first batch, and the remainder is
// self-scheduled in geometrically shrinking batches:
//
//   stage j chunk = max(k, ceil(alpha * (1-alpha)^j * I / p))
//
// alpha = 0.5 makes every stage half the previous one, matching FSS
// exactly in exact arithmetic; larger alpha front-loads more work
// (fewer messages, more imbalance risk).
#pragma once

#include "lss/sched/scheme.hpp"

namespace lss::sched {

class SssScheduler final : public ChunkScheduler {
 public:
  /// `alpha` in (0, 1); `min_chunk` = k >= 1.
  SssScheduler(Index total, int num_pes, double alpha = 0.5,
               Index min_chunk = 1);

  std::string name() const override;
  double alpha() const { return alpha_; }

 protected:
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  double alpha_;
  Index min_chunk_;
  int stage_ = 0;
  int stage_left_ = 0;
  double stage_share_ = 0.0;  ///< alpha * (1-alpha)^j * I / p
};

}  // namespace lss::sched
