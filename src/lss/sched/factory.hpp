// Construction of simple schemes by name, for CLI tools and benches.
//
// Spec grammar:  name[:key=value[,key=value...]]
//   static | ss | css:k=16 | gss[:k=2] | tss[:F=125,L=1] |
//   fss[:alpha=2,rounding=ceil] | fiss[:sigma=3,X=5] |
//   tfss[:F=...,L=...] | sss[:alpha=0.5,k=1] |
//   wf:weights=3;3;1[,alpha=2]
//
// Free functions replaced the old SchemeSpec value class: parsed
// state never needs to outlive a call, so the spec *string* is the
// one currency every layer trades in (lss::SchedulerDesc, the
// dispatchers, the masterless plans all carry it verbatim).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lss/sched/scheme.hpp"

namespace lss::sched {

/// Builds a simple scheduler from `spec`. Throws lss::ContractError
/// on unknown scheme names or malformed/unaccepted parameters, with
/// the offending name/key in the message.
std::unique_ptr<ChunkScheduler> make_scheme(std::string_view spec,
                                            Index total, int num_pes);

/// Parses without constructing — the cheap up-front validity check.
/// Throws exactly when make_scheme would.
void validate_scheme(std::string_view spec);

/// Leading (lower-cased) scheme name of a validated spec, e.g.
/// "gss:k=2" -> "gss". Throws on unknown schemes.
std::string scheme_kind(std::string_view spec);

/// Names of all schemes the factory understands.
std::vector<std::string> known_schemes();

}  // namespace lss::sched
