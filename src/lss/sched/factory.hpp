// Construction of simple schemes by name, for CLI tools and benches.
//
// Spec grammar:  name[:key=value[,key=value...]]
//   static | ss | css:k=16 | gss[:k=2] | tss[:F=125,L=1] |
//   fss[:alpha=2,rounding=ceil] | fiss[:sigma=3,X=5] |
//   tfss[:F=...,L=...] | sss[:alpha=0.5,k=1] |
//   wf:weights=3;3;1[,alpha=2]
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lss/sched/scheme.hpp"

namespace lss::sched {

/// Parsed scheme specification; construct schedulers per (I, p).
class SchemeSpec {
 public:
  /// Throws lss::ContractError on unknown scheme or malformed params.
  static SchemeSpec parse(std::string_view spec);

  const std::string& kind() const { return kind_; }
  std::string spec_string() const { return spec_; }

  std::unique_ptr<ChunkScheduler> make(Index total, int num_pes) const;

  /// Names of all schemes the factory understands.
  static std::vector<std::string> known_schemes();

 private:
  std::string kind_;
  std::string spec_;
  Index k_ = 1;
  Index first_ = -1;
  Index last_ = -1;
  double alpha_ = 2.0;
  int sigma_ = 3;
  int x_ = -1;
  Rounding rounding_ = Rounding::Ceil;
  std::vector<double> weights_;
};

}  // namespace lss::sched
