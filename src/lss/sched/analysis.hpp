// Closed-form scheduling analysis: predicted chunk counts and
// master-overhead estimates per scheme, checked against the actual
// generators by the test suite and against the simulator by
// bench_overhead-style experiments. Useful for capacity planning
// without running anything.
#pragma once

#include <string_view>

#include "lss/support/types.hpp"

namespace lss::sched {

/// Predicted number of scheduling steps (chunks) for a scheme spec
/// over I iterations and p PEs. Exact for static/ss/css/tss/fiss;
/// tight (within p) for the geometric families (gss/fss/sss/tfss).
Index predicted_chunks(std::string_view spec, Index total, int num_pes);

/// Total master time spent scheduling: predicted_chunks * overhead
/// (+ one termination message per PE).
double predicted_master_time(std::string_view spec, Index total,
                             int num_pes, double overhead_s);

}  // namespace lss::sched
