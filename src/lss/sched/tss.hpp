// Trapezoid Self-Scheduling (Tzen & Ni 1993): chunk sizes decrease
// linearly from F to L. Defaults F = floor(I / 2p), L = 1.
//
//   N = ceil(2I / (F+L)),  D = floor((F-L) / (N-1)),  C_i = F - (i-1)D
//
// Note: the paper prints N with a floor, but its own Table 1 example
// (I=1000, p=4 -> 16 chunks, D=8) requires the ceiling used by Tzen &
// Ni; we use the ceiling (see DESIGN.md errata).
#pragma once

#include "lss/sched/scheme.hpp"

namespace lss::sched {

/// The trapezoid parameters, exposed separately because the
/// distributed DTSS/DTFSS schemes recompute them with p replaced by
/// the cluster's total available computing power (a real number).
struct TssParams {
  double first = 1.0;      ///< F
  double last = 1.0;       ///< L
  Index steps = 1;         ///< N
  double decrement = 0.0;  ///< D

  /// Formula value of the i-th chunk (0-based step), floored at `last`.
  double chunk_at(Index step) const;
};

/// Integer-exact parameters used by the simple TSS (Table 1 semantics):
/// F = floor(I/2p) (min 1), L = 1, D floored to an integer.
TssParams tss_params_integer(Index total, Index p);

/// Real-valued parameters for a possibly fractional "processor count"
/// (the distributed schemes' total ACP). F and D stay fractional so a
/// large ACP sum does not floor D to zero and degenerate the ramp.
TssParams tss_params_real(double total, double p, double first = -1.0,
                          double last = 1.0);

class TssScheduler final : public ChunkScheduler {
 public:
  /// first/last <= 0 selects the defaults F = floor(I/2p), L = 1.
  TssScheduler(Index total, int num_pes, Index first = -1, Index last = -1);

  std::string name() const override;
  const TssParams& params() const { return params_; }

 protected:
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  TssParams params_;
  Index step_ = 0;
};

}  // namespace lss::sched
