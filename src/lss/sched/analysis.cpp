#include "lss/sched/analysis.hpp"

#include <cmath>

#include "lss/sched/factory.hpp"
#include "lss/sched/sequence.hpp"
#include "lss/support/assert.hpp"

namespace lss::sched {

Index predicted_chunks(std::string_view spec, Index total, int num_pes) {
  LSS_REQUIRE(total >= 0, "iteration count must be non-negative");
  LSS_REQUIRE(num_pes >= 1, "need at least one PE");
  if (total == 0) return 0;
  const std::string kind = scheme_kind(spec);
  const double I = static_cast<double>(total);
  const double p = static_cast<double>(num_pes);

  if (kind == "static")
    return std::min<Index>(total, num_pes);
  if (kind == "ss") return total;
  if (kind == "css") {
    // ceil(I / k): recover k by asking the generator for one chunk.
    auto s = make_scheme(spec, total, num_pes);
    const Index k = s->next(0).size();
    return (total + k - 1) / k;
  }
  if (kind == "tss" || kind == "tfss") {
    // With the defaults F = floor(I/2p), L = 1 the *assigned* count is
    // the smallest n with n*F - D*n(n-1)/2 >= I, using the integer
    // decrement D = floor((F-L)/(N-1)); integer flooring makes the
    // ramp over-cover I, so this is below the formula N. TFSS shares
    // TSS's step count (its stages re-bundle the same ramp).
    const double F = std::max(1.0, std::floor(I / (2.0 * p)));
    const double N = std::ceil(2.0 * I / (F + 1.0));
    const double D = N > 1.0 ? std::floor((F - 1.0) / (N - 1.0)) : 0.0;
    if (D <= 0.0) return static_cast<Index>(std::ceil(I / F));
    // Solve n*F - D*n(n-1)/2 = I for the positive root.
    const double b = 2.0 * F + D;
    const double disc = b * b - 8.0 * D * I;
    if (disc < 0.0) return static_cast<Index>(N);  // ramp never covers
    const double n = (b - std::sqrt(disc)) / (2.0 * D);
    return static_cast<Index>(std::ceil(n));
  }
  if (kind == "gss") {
    // Chunks shrink by (1 - 1/p) per step: about p * ln(I/p) + p.
    return static_cast<Index>(std::ceil(
               p * std::log(std::max(1.0, I / p)))) +
           num_pes;
  }
  if (kind == "fss" || kind == "sss" ||
      kind == "wf") {
    // Stages halve the remainder: ~log2(I/p) stages of p chunks.
    return static_cast<Index>(
        p * std::ceil(std::log2(std::max(2.0, I / p))));
  }
  if (kind == "fiss") {
    // Exactly sigma stages of p chunks (+ rounding spill-over).
    auto s = make_scheme(spec, total, num_pes);
    return static_cast<Index>(chunk_sizes(*s).size());
  }
  LSS_REQUIRE(false,
              "no chunk-count model for scheme '" + kind + "'");
  return 0;
}

double predicted_master_time(std::string_view spec, Index total,
                             int num_pes, double overhead_s) {
  LSS_REQUIRE(overhead_s >= 0.0, "overhead must be non-negative");
  const Index chunks = predicted_chunks(spec, total, num_pes);
  return (static_cast<double>(chunks) + static_cast<double>(num_pes)) *
         overhead_s;
}

}  // namespace lss::sched
