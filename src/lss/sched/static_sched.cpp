#include "lss/sched/static_sched.hpp"

namespace lss::sched {

StaticScheduler::StaticScheduler(Index total, int num_pes)
    : ChunkScheduler(total, num_pes) {}

Index StaticScheduler::propose_chunk(int /*pe*/) {
  const Index p = num_pes();
  const Index base = total() / p;
  const Index extra = total() % p;
  // The first (I mod p) chunks are one larger so the p chunks cover I.
  if (chunks_granted_ >= p) return remaining();  // all late requests drain
  return base + (chunks_granted_ < extra ? 1 : 0);
}

void StaticScheduler::on_granted(int /*pe*/, Index /*granted*/) {
  ++chunks_granted_;
}

}  // namespace lss::sched
