#include "lss/sched/wf.hpp"

#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss::sched {

WfScheduler::WfScheduler(Index total, int num_pes,
                         std::vector<double> weights, double alpha,
                         Rounding rounding)
    : ChunkScheduler(total, num_pes),
      weights_(std::move(weights)),
      alpha_(alpha),
      rounding_(rounding) {
  LSS_REQUIRE(static_cast<int>(weights_.size()) == num_pes,
              "need one weight per PE");
  LSS_REQUIRE(alpha > 0.0, "alpha must be positive");
  for (double w : weights_) {
    LSS_REQUIRE(w > 0.0, "weights must be positive");
    weight_sum_ += w;
  }
}

std::string WfScheduler::name() const {
  std::string n = "wf(alpha=";
  n += fmt_fixed(alpha_, 1);
  n += ')';
  return n;
}

Index WfScheduler::propose_chunk(int pe) {
  if (stage_left_ == 0) {
    stage_total_ = static_cast<double>(remaining()) / alpha_;
    stage_left_ = num_pes();
  }
  const double share =
      stage_total_ * weights_[static_cast<std::size_t>(pe)] / weight_sum_;
  return apply_rounding(share, rounding_);
}

void WfScheduler::on_granted(int /*pe*/, Index /*granted*/) {
  --stage_left_;
}

}  // namespace lss::sched
