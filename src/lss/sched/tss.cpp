#include "lss/sched/tss.hpp"

#include <algorithm>
#include <cmath>

#include "lss/support/assert.hpp"

namespace lss::sched {

double TssParams::chunk_at(Index step) const {
  const double c = first - static_cast<double>(step) * decrement;
  return std::max(c, last);
}

TssParams tss_params_integer(Index total, Index p) {
  LSS_REQUIRE(total >= 0, "iteration count must be non-negative");
  LSS_REQUIRE(p >= 1, "need at least one PE");
  TssParams out;
  if (total <= 0) return out;
  Index first = total / (2 * p);
  if (first < 1) first = 1;
  const Index last = 1;
  // N = ceil(2I / (F+L)); at least 1.
  Index steps = (2 * total + first + last - 1) / (first + last);
  if (steps < 1) steps = 1;
  const Index dec = steps > 1 ? (first - last) / (steps - 1) : 0;
  out.first = static_cast<double>(first);
  out.last = static_cast<double>(last);
  out.steps = steps;
  out.decrement = static_cast<double>(dec);
  return out;
}

TssParams tss_params_real(double total, double p, double first, double last) {
  LSS_REQUIRE(total >= 0.0, "iteration count must be non-negative");
  LSS_REQUIRE(p > 0.0, "processor power must be positive");
  TssParams out;
  if (total <= 0.0) return out;
  if (first <= 0.0) first = total / (2.0 * p);
  if (first < 1.0) first = 1.0;
  if (last <= 0.0) last = 1.0;
  if (last > first) last = first;
  double steps = std::ceil(2.0 * total / (first + last));
  if (steps < 1.0) steps = 1.0;
  out.first = first;
  out.last = last;
  out.steps = static_cast<Index>(steps);
  out.decrement = steps > 1.0 ? (first - last) / (steps - 1.0) : 0.0;
  return out;
}

TssScheduler::TssScheduler(Index total, int num_pes, Index first, Index last)
    : ChunkScheduler(total, num_pes) {
  if (first <= 0 && last <= 0) {
    params_ = tss_params_integer(total, num_pes);
    return;
  }
  // User-supplied F (and optional L): keep integer arithmetic.
  Index f = first > 0 ? first : std::max<Index>(total / (2 * num_pes), 1);
  Index l = last > 0 ? last : 1;
  LSS_REQUIRE(f >= 1, "first chunk must be at least 1");
  LSS_REQUIRE(l >= 1 && l <= f, "need 1 <= L <= F");
  Index steps = total > 0 ? (2 * total + f + l - 1) / (f + l) : 1;
  if (steps < 1) steps = 1;
  params_.first = static_cast<double>(f);
  params_.last = static_cast<double>(l);
  params_.steps = steps;
  params_.decrement =
      steps > 1 ? static_cast<double>((f - l) / (steps - 1)) : 0.0;
}

std::string TssScheduler::name() const {
  return "tss(F=" + std::to_string(static_cast<Index>(params_.first)) +
         ",L=" + std::to_string(static_cast<Index>(params_.last)) + ")";
}

Index TssScheduler::propose_chunk(int /*pe*/) {
  return static_cast<Index>(params_.chunk_at(step_));
}

void TssScheduler::on_granted(int /*pe*/, Index /*granted*/) { ++step_; }

}  // namespace lss::sched
