// Guided Self-Scheduling (Polychronopoulos & Kuck 1987):
// C_i = ceil(R_{i-1} / p). GSS(k) additionally enforces a minimum
// chunk of k to curb the flood of tiny trailing chunks.
#pragma once

#include "lss/sched/scheme.hpp"

namespace lss::sched {

class GssScheduler final : public ChunkScheduler {
 public:
  /// `min_chunk` = k >= 1; k == 1 is plain GSS.
  GssScheduler(Index total, int num_pes, Index min_chunk = 1);

  std::string name() const override;
  Index min_chunk() const { return min_chunk_; }

 protected:
  Index propose_chunk(int pe) override;

 private:
  Index min_chunk_;
};

}  // namespace lss::sched
