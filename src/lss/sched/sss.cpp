#include "lss/sched/sss.hpp"

#include <cmath>

#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss::sched {

SssScheduler::SssScheduler(Index total, int num_pes, double alpha,
                           Index min_chunk)
    : ChunkScheduler(total, num_pes), alpha_(alpha), min_chunk_(min_chunk) {
  LSS_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
  LSS_REQUIRE(min_chunk >= 1, "minimum chunk must be at least 1");
}

std::string SssScheduler::name() const {
  std::string n = "sss(alpha=";
  n += fmt_fixed(alpha_, 2);
  if (min_chunk_ > 1) {
    n += ",k=";
    n += std::to_string(min_chunk_);
  }
  n += ')';
  return n;
}

Index SssScheduler::propose_chunk(int /*pe*/) {
  if (stage_left_ == 0) {
    stage_share_ = alpha_ *
                   std::pow(1.0 - alpha_, static_cast<double>(stage_)) *
                   static_cast<double>(total()) /
                   static_cast<double>(num_pes());
    stage_left_ = num_pes();
  }
  const Index chunk = static_cast<Index>(std::ceil(stage_share_));
  return chunk < min_chunk_ ? min_chunk_ : chunk;
}

void SssScheduler::on_granted(int /*pe*/, Index /*granted*/) {
  if (--stage_left_ == 0) ++stage_;
}

}  // namespace lss::sched
