// Chunk Self-Scheduling — CSS(k): every request is granted a fixed
// chunk of k iterations. CSS(1) is Pure Self-Scheduling (SS).
#pragma once

#include "lss/sched/scheme.hpp"

namespace lss::sched {

class CssScheduler final : public ChunkScheduler {
 public:
  /// `chunk_size` = k >= 1, chosen by the user (paper: hard to pick well).
  CssScheduler(Index total, int num_pes, Index chunk_size);

  std::string name() const override;
  Index chunk_size() const { return chunk_size_; }

 protected:
  Index propose_chunk(int pe) override;

 private:
  Index chunk_size_;
};

/// Pure Self-Scheduling: one iteration per request.
CssScheduler make_pure_ss(Index total, int num_pes);

/// Kruskal & Weiss's near-optimal fixed chunk size for CSS
/// ("Allocating independent subtasks on parallel processors", 1985):
///
///   k = ( sqrt(2) * I * h / (sigma * p * sqrt(ln p)) )^(2/3)
///
/// where h is the per-chunk scheduling overhead and sigma the
/// standard deviation of iteration times (same time unit). Clamped
/// to [1, ceil(I/p)]. For p == 1 the whole loop is one chunk.
Index kruskal_weiss_chunk(Index total, int num_pes, double overhead,
                          double iteration_stddev);

}  // namespace lss::sched
