#include "lss/api/scheduler.hpp"

#include <mutex>
#include <utility>

#include "lss/distsched/dfactory.hpp"
#include "lss/sched/factory.hpp"
#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss {

std::string to_string(SchemeFamily family) {
  switch (family) {
    case SchemeFamily::Simple:
      return "simple";
    case SchemeFamily::Distributed:
      return "distributed";
  }
  return "?";
}

// ----------------------------------------------------------- handle

Scheduler::Scheduler(std::unique_ptr<sched::ChunkScheduler> simple)
    : simple_(std::move(simple)) {
  LSS_REQUIRE(simple_ != nullptr, "null simple scheduler");
}

Scheduler::Scheduler(std::unique_ptr<distsched::DistScheduler> dist)
    : dist_(std::move(dist)) {
  LSS_REQUIRE(dist_ != nullptr, "null distributed scheduler");
}

std::string Scheduler::name() const {
  return dist_ ? dist_->name() : simple_->name();
}

Index Scheduler::total() const {
  return dist_ ? dist_->total() : simple_->total();
}

int Scheduler::num_pes() const {
  return dist_ ? dist_->num_pes() : simple_->num_pes();
}

bool Scheduler::done() const {
  return dist_ ? dist_->done() : simple_->done();
}

Index Scheduler::assigned() const {
  return dist_ ? dist_->assigned() : simple_->assigned();
}

Index Scheduler::remaining() const {
  return dist_ ? dist_->remaining() : simple_->remaining();
}

Index Scheduler::steps() const {
  return dist_ ? dist_->steps() : simple_->steps();
}

void Scheduler::initialize(const std::vector<double>& initial_acps) {
  if (dist_) dist_->initialize(initial_acps);
}

Range Scheduler::next(int pe, double acp) {
  return dist_ ? dist_->next(pe, acp) : simple_->next(pe);
}

SchedulerSnapshot Scheduler::snapshot() const {
  SchedulerSnapshot out;
  out.name = name();
  out.family = family();
  out.total = total();
  out.assigned = assigned();
  out.remaining = remaining();
  out.steps = steps();
  out.remaining_range = remaining_range();
  if (dist_) {
    out.replans = dist_->replans();
    out.acps.reserve(static_cast<std::size_t>(num_pes()));
    for (int pe = 0; pe < num_pes(); ++pe)
      out.acps.push_back(std::as_const(*dist_).acpsa().get(pe));
  }
  return out;
}

void Scheduler::update_acp(const std::vector<double>& acps) {
  if (dist_) dist_->update_acp(acps);
}

std::unique_ptr<sched::ChunkScheduler> Scheduler::take_simple() && {
  LSS_REQUIRE(simple_ != nullptr,
              "scheduler is distributed; use take_dist()");
  return std::move(simple_);
}

std::unique_ptr<distsched::DistScheduler> Scheduler::take_dist() && {
  LSS_REQUIRE(dist_ != nullptr, "scheduler is simple; use take_simple()");
  return std::move(dist_);
}

// --------------------------------------------------------- registry

namespace {

struct Entry {
  SchemeInfo info;
  SchedulerMaker make;
};

struct Registry {
  std::mutex mu;
  std::vector<Entry> entries;
};

Scheduler make_simple_entry(const std::string& spec, Index total,
                            int num_pes) {
  return Scheduler(sched::make_scheme(spec, total, num_pes));
}

Scheduler make_dist_entry(const std::string& spec, Index total,
                          int num_pes) {
  return Scheduler(distsched::make_dist_scheme(spec, total, num_pes));
}

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    const auto add = [&](const char* name, SchemeFamily family,
                         const char* params, SchedulerMaker make) {
      reg->entries.push_back(
          Entry{SchemeInfo{name, family, params}, std::move(make)});
    };
    // Simple schemes (paper §2) — parameter grammar per
    // sched/factory.
    add("static", SchemeFamily::Simple, "", make_simple_entry);
    add("ss", SchemeFamily::Simple, "", make_simple_entry);
    add("css", SchemeFamily::Simple, "k=<chunk>", make_simple_entry);
    add("gss", SchemeFamily::Simple, "k=<min chunk>", make_simple_entry);
    add("tss", SchemeFamily::Simple, "F=<first>,L=<last>",
        make_simple_entry);
    add("fss", SchemeFamily::Simple, "alpha=<a>,rounding=<mode>",
        make_simple_entry);
    add("fiss", SchemeFamily::Simple, "sigma=<stages>,X=<x>",
        make_simple_entry);
    add("tfss", SchemeFamily::Simple, "F=<first>,L=<last>",
        make_simple_entry);
    add("sss", SchemeFamily::Simple, "alpha=<a>,k=<min chunk>",
        make_simple_entry);
    add("wf", SchemeFamily::Simple,
        "weights=<w1;w2;...>,alpha=<a>,rounding=<mode>",
        make_simple_entry);
    // Distributed schemes (paper §3.1, §6) — grammar per
    // distsched/dfactory.
    add("dtss", SchemeFamily::Distributed, "", make_dist_entry);
    add("dfss", SchemeFamily::Distributed, "alpha=<a>", make_dist_entry);
    add("dfiss", SchemeFamily::Distributed, "sigma=<stages>,x=<x>",
        make_dist_entry);
    add("dtfss", SchemeFamily::Distributed, "", make_dist_entry);
    add("awf", SchemeFamily::Distributed, "alpha=<a>", make_dist_entry);
    add("dist", SchemeFamily::Distributed, "dist(<simple-spec>)",
        make_dist_entry);
    return reg;
  }();
  return *r;
}

/// Leading scheme name of a spec: everything before ':' (parameters)
/// or '(' (the dist(...) adapter grammar), lower-cased.
std::string leading_name(std::string_view spec) {
  const std::string s{trim(spec)};
  const auto cut = s.find_first_of(":(");
  return to_lower(trim(std::string_view(s).substr(0, cut)));
}

const Entry* find_entry(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const Entry& e : reg.entries)
    if (e.info.name == name) return &e;
  return nullptr;
}

const Entry& resolve(std::string_view spec) {
  const std::string name = leading_name(spec);
  LSS_REQUIRE(!name.empty(), "empty scheme spec");
  const Entry* entry = find_entry(name);
  LSS_REQUIRE(entry != nullptr,
              "unknown scheme: '" + name + "'; known schemes: " +
                  join(known_schemes(), ", "));
  return *entry;
}

}  // namespace

Scheduler make_scheduler(std::string_view spec, Index total, int num_pes) {
  const Entry& entry = resolve(spec);
  return entry.make(std::string(trim(spec)), total, num_pes);
}

std::unique_ptr<sched::ChunkScheduler> make_simple_scheduler(
    std::string_view spec, Index total, int num_pes) {
  Scheduler s = make_scheduler(spec, total, num_pes);
  LSS_REQUIRE(!s.distributed(),
              "scheme '" + std::string(trim(spec)) +
                  "' is distributed; use make_distributed_scheduler");
  return std::move(s).take_simple();
}

std::unique_ptr<distsched::DistScheduler> make_distributed_scheduler(
    std::string_view spec, Index total, int num_pes) {
  Scheduler s = make_scheduler(spec, total, num_pes);
  LSS_REQUIRE(s.distributed(),
              "scheme '" + std::string(trim(spec)) +
                  "' is simple; use make_simple_scheduler");
  return std::move(s).take_dist();
}

SchemeFamily scheme_family(std::string_view spec) {
  return resolve(spec).info.family;
}

std::vector<SchemeInfo> scheme_registry() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<SchemeInfo> out;
  out.reserve(reg.entries.size());
  for (const Entry& e : reg.entries) out.push_back(e.info);
  return out;
}

std::vector<std::string> known_schemes() {
  std::vector<std::string> out;
  for (const SchemeInfo& info : scheme_registry())
    out.push_back(info.name);
  return out;
}

void register_scheme(SchemeInfo info, SchedulerMaker make) {
  LSS_REQUIRE(!info.name.empty(), "scheme name must be non-empty");
  LSS_REQUIRE(info.name == to_lower(info.name),
              "scheme names are lower-case: '" + info.name + "'");
  LSS_REQUIRE(make != nullptr, "scheme maker must be callable");
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const Entry& e : reg.entries)
    LSS_REQUIRE(e.info.name != info.name,
                "scheme '" + info.name + "' is already registered");
  reg.entries.push_back(Entry{std::move(info), std::move(make)});
}

}  // namespace lss
