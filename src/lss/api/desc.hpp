// lss::SchedulerDesc — the one scheduler description every layer
// consumes.
//
// Before this type, "which scheduler" traveled as a bare spec string
// and every adaptive/ACP knob would have needed its own field on
// every config struct (RtConfig, MasterConfig, rt::JobSpec, the sim,
// four CLIs). SchedulerDesc bundles the spec string, an optional
// static ACP source, and the adaptive (replan/migration) policy into
// one value with one validator and one JSON shape:
//
//   lss::SchedulerDesc d = "gss:k=2";          // implicit, spec only
//   d.adaptive.enabled = true;                  // self-tuning on
//   d.adaptive.force.push_back({500, "tss"});   // scripted migration
//
// JSON: a bare string ("tss") is the trivial shorthand; the full form
// is an object {"scheme": ..., "static_acps": [...], "adaptive":
// {...}} with unknown keys rejected by name, like rt::JobSpec.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lss/support/json.hpp"
#include "lss/support/types.hpp"

namespace lss {

/// Mid-loop self-tuning policy (DESIGN.md §16): when and how the
/// runtime may replan — refresh a distributed scheme's ACPs, or
/// migrate a simple scheme to a better one chosen by simulator
/// replay of the remaining iterations.
struct AdaptivePolicy {
  /// Master switch for *organic* (drift-triggered) adaptation. The
  /// scripted `force` list below works even when this is false.
  bool enabled = false;
  /// Iterations granted between drift checks; 0 picks total/16
  /// (clamped to >= 1) at run time.
  Index check_every = 0;
  /// A PE has drifted when its observed throughput deviates from its
  /// baseline by more than this relative fraction.
  double drift_threshold = 0.25;
  /// Replan when more than this fraction of PEs drifted — the
  /// paper's ">half the A_i changed" rule generalized.
  double drift_fraction = 0.5;
  /// Hysteresis: only migrate when the replayed winner predicts at
  /// least this relative improvement over staying put.
  double min_gain = 0.05;
  /// Hard cap on migrations per run (replans of a distributed
  /// scheme's ACPs are not migrations and are not counted).
  int max_migrations = 4;
  /// Candidate schemes the replayer scores; empty = a built-in set
  /// of deterministic simple schemes. Migration targets must be
  /// simple-family (a distributed scheme already self-adapts through
  /// its ACP feedback loop).
  std::vector<std::string> candidates;
  /// Seed for the replay simulations — forwarded so live-triggered
  /// replays stay reproducible (sim replay determinism contract).
  std::uint64_t replay_seed = 1;

  /// Scripted migration: switch to scheme `to` at the first chunk
  /// boundary at or past `at` assigned iterations. Deterministic by
  /// construction — every party can compute the resulting plan from
  /// the desc alone, which is what keeps the masterless path open.
  struct Forced {
    Index at = 0;
    std::string to;
  };
  /// Forced cut list, strictly increasing in `at`. Applied before —
  /// and counted against — max_migrations.
  std::vector<Forced> force;

  /// Whether this policy can change anything at run time.
  bool active() const { return enabled || !force.empty(); }
};

/// The unified scheduler description: scheme spec + ACP source +
/// adaptive policy. Implicitly constructible from a spec string so
/// `config.scheduler = "gss:k=2"` keeps working everywhere.
struct SchedulerDesc {
  /// Any spec the unified registry resolves — simple ("tss",
  /// "gss:k=2"), distributed ("dtss"), or wrapped ("dist(gss:k=2)").
  std::string scheme = "tss";
  /// Static ACP override, one entry per PE. Empty = derive from the
  /// host's cluster model (relative speeds / run queues), which is
  /// what every pre-existing caller did.
  std::vector<double> static_acps;
  /// Self-tuning policy; inert by default.
  AdaptivePolicy adaptive;

  SchedulerDesc() = default;
  SchedulerDesc(std::string spec) : scheme(std::move(spec)) {}
  SchedulerDesc(std::string_view spec) : scheme(spec) {}
  SchedulerDesc(const char* spec) : scheme(spec) {}

  /// True when only the scheme string carries information — the form
  /// that serializes to the bare-string JSON shorthand.
  bool trivial() const { return static_acps.empty() && !adaptive.active(); }

  /// Throws lss::ContractError naming the offender: unknown scheme
  /// (registry diagnostics), bad adaptive knobs, non-simple or
  /// unknown migration targets, a non-increasing force list.
  void validate() const;

  /// JSON: trivial descs dump as the bare spec string, everything
  /// else as the full object. from_json_value accepts both shapes;
  /// `what` names the enclosing key in diagnostics (e.g. "job spec
  /// key 'scheduler'").
  json::Value to_json_value() const;
  static SchedulerDesc from_json_value(const json::Value& value,
                                       const std::string& what);
};

/// The built-in candidate set used when AdaptivePolicy::candidates is
/// empty: deterministic simple schemes spanning the chunking spectrum.
std::vector<std::string> default_adaptive_candidates();

}  // namespace lss
