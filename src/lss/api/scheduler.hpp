// The single scheduler-construction entry point.
//
// Before this layer, callers had to know whether a scheme was
// "simple" (lss::sched factory) or "distributed" (lss::distsched
// dfactory) before they could build it. lss::make_scheduler resolves
// both grammars from one string:
//
//   auto gss  = lss::make_scheduler("gss:k=2",       1000, 8);
//   auto dtss = lss::make_scheduler("dtss",          1000, 8);
//   auto dist = lss::make_scheduler("dist(gss:k=2)", 1000, 8);
//
// Construction goes through a name registry: every scheme (built-in
// or registered at runtime via register_scheme) maps its leading name
// to a family and a maker. The per-family factories
// (sched::make_scheme, distsched::make_dist_scheme) remain the
// parameter grammar underneath.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lss/distsched/dist_scheme.hpp"
#include "lss/sched/scheme.hpp"

namespace lss {

enum class SchemeFamily {
  Simple,       ///< power-oblivious master policy (paper §2)
  Distributed,  ///< ACP-aware distributed scheme (paper §3, §6)
};

std::string to_string(SchemeFamily family);

struct SchemeInfo {
  std::string name;    ///< registry key, e.g. "gss", "dtss", "dist"
  SchemeFamily family;
  std::string params;  ///< parameter grammar, e.g. "k=<min chunk>"
};

/// A point-in-time view of a scheduler's progress — what the
/// adaptive replanner (lss/adapt) snapshots before scoring candidate
/// schemes over the remaining iterations. Both families grant from a
/// contiguous cursor, so the un-assigned work is always the suffix
/// `remaining_range` = [assigned, total).
struct SchedulerSnapshot {
  std::string name;
  SchemeFamily family = SchemeFamily::Simple;
  Index total = 0;
  Index assigned = 0;
  Index remaining = 0;
  Index steps = 0;
  Range remaining_range{};
  int replans = 0;           ///< distributed only; 0 for simple
  std::vector<double> acps;  ///< distributed only: current ACPSA
};

/// Unified owning handle over either scheduler family. next()/done()
/// work uniformly; the typed accessors expose the concrete API when
/// a host needs family-specific calls (initialize, feedback, ...).
class Scheduler {
 public:
  explicit Scheduler(std::unique_ptr<sched::ChunkScheduler> simple);
  explicit Scheduler(std::unique_ptr<distsched::DistScheduler> dist);

  SchemeFamily family() const {
    return dist_ ? SchemeFamily::Distributed : SchemeFamily::Simple;
  }
  bool distributed() const { return dist_ != nullptr; }

  std::string name() const;
  Index total() const;
  int num_pes() const;
  bool done() const;
  Index assigned() const;
  Index remaining() const;
  Index steps() const;

  /// Distributed schemes require the initial ACP gather before
  /// next(); for simple schemes this is a no-op.
  void initialize(const std::vector<double>& initial_acps);

  /// Serves PE `pe`. `acp` is consumed by distributed schemes and
  /// ignored by simple ones, so hosts can drive both uniformly.
  Range next(int pe, double acp = 1.0);

  /// The contiguous un-assigned suffix [assigned(), total()) — the
  /// iteration range a migration or replay covers.
  Range remaining_range() const { return Range{assigned(), total()}; }

  /// Progress snapshot for replanning and diagnostics.
  SchedulerSnapshot snapshot() const;

  /// Refreshes every A_i at once and replans over the remaining
  /// iterations (distributed schemes; counted in their replans()).
  /// A typed no-op for simple schemes, which are power-oblivious —
  /// callers drive both families uniformly and check snapshot()
  /// .replans when they care whether anything happened.
  void update_acp(const std::vector<double>& acps);

  /// nullptr when the scheduler is of the other family.
  sched::ChunkScheduler* simple() { return simple_.get(); }
  const sched::ChunkScheduler* simple() const { return simple_.get(); }
  distsched::DistScheduler* dist() { return dist_.get(); }
  const distsched::DistScheduler* dist() const { return dist_.get(); }

  /// Transfers ownership out (throws if the family does not match) —
  /// for call sites that keep a typed unique_ptr.
  std::unique_ptr<sched::ChunkScheduler> take_simple() &&;
  std::unique_ptr<distsched::DistScheduler> take_dist() &&;

 private:
  std::unique_ptr<sched::ChunkScheduler> simple_;
  std::unique_ptr<distsched::DistScheduler> dist_;
};

/// Builds a scheduler of either family from a spec string. Throws
/// lss::ContractError on unknown names (the message lists every
/// registered scheme) or malformed parameters.
Scheduler make_scheduler(std::string_view spec, Index total, int num_pes);

/// Typed conveniences over the same registry; throw when the spec
/// resolves to the other family.
std::unique_ptr<sched::ChunkScheduler> make_simple_scheduler(
    std::string_view spec, Index total, int num_pes);
std::unique_ptr<distsched::DistScheduler> make_distributed_scheduler(
    std::string_view spec, Index total, int num_pes);

/// Family of the scheme a spec names, without constructing it.
SchemeFamily scheme_family(std::string_view spec);

/// Every registered scheme, built-ins first.
std::vector<SchemeInfo> scheme_registry();

/// All registered names (simple + distributed), registry order.
std::vector<std::string> known_schemes();

/// Registers a custom scheme under `info.name` (lower-case, unique).
/// `make` receives the full spec string and (total, num_pes).
using SchedulerMaker =
    std::function<Scheduler(const std::string& spec, Index total,
                            int num_pes)>;
void register_scheme(SchemeInfo info, SchedulerMaker make);

}  // namespace lss
