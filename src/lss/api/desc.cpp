#include "lss/api/desc.hpp"

#include <utility>

#include "lss/api/scheduler.hpp"
#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss {

namespace {

const std::vector<std::string>& desc_keys() {
  static const std::vector<std::string> keys = {"scheme", "static_acps",
                                                "adaptive"};
  return keys;
}

const std::vector<std::string>& adaptive_keys() {
  static const std::vector<std::string> keys = {
      "enabled",       "check_every", "drift_threshold",
      "drift_fraction", "min_gain",   "max_migrations",
      "candidates",    "replay_seed", "force"};
  return keys;
}

const std::vector<std::string>& forced_keys() {
  static const std::vector<std::string> keys = {"at", "to"};
  return keys;
}

void require_known(const std::string& key,
                   const std::vector<std::string>& accepted,
                   const std::string& what) {
  bool ok = false;
  for (const std::string& k : accepted) ok = ok || k == key;
  LSS_REQUIRE(ok, what + " does not accept key '" + key +
                      "' (accepts: " + join(accepted, ", ") + ")");
}

AdaptivePolicy adaptive_from_json(const json::Value& value,
                                  const std::string& what) {
  LSS_REQUIRE(value.is_object(), what + " must be an object");
  AdaptivePolicy out;
  for (const auto& [key, v] : value.as_object()) {
    require_known(key, adaptive_keys(), what);
    if (key == "enabled") {
      out.enabled = v.as_bool();
    } else if (key == "check_every") {
      out.check_every = v.as_int();
    } else if (key == "drift_threshold") {
      out.drift_threshold = v.as_number();
    } else if (key == "drift_fraction") {
      out.drift_fraction = v.as_number();
    } else if (key == "min_gain") {
      out.min_gain = v.as_number();
    } else if (key == "max_migrations") {
      out.max_migrations = static_cast<int>(v.as_int());
    } else if (key == "candidates") {
      for (const json::Value& c : v.as_array())
        out.candidates.push_back(c.as_string());
    } else if (key == "replay_seed") {
      out.replay_seed = static_cast<std::uint64_t>(v.as_int());
    } else if (key == "force") {
      for (const json::Value& f : v.as_array()) {
        LSS_REQUIRE(f.is_object(),
                    what + " key 'force' entries must be objects");
        AdaptivePolicy::Forced fc;
        for (const auto& [fkey, fv] : f.as_object()) {
          require_known(fkey, forced_keys(), what + " key 'force'");
          if (fkey == "at") fc.at = fv.as_int();
          else if (fkey == "to") fc.to = fv.as_string();
        }
        out.force.push_back(std::move(fc));
      }
    }
  }
  return out;
}

}  // namespace

void SchedulerDesc::validate() const {
  // Resolving the family re-uses the registry's own unknown-scheme
  // diagnostics (it names every known spec).
  (void)scheme_family(scheme);
  for (std::size_t i = 0; i < static_acps.size(); ++i)
    LSS_REQUIRE(static_acps[i] >= 0.0,
                "static_acps[" + std::to_string(i) + "] = " +
                    std::to_string(static_acps[i]) + " must be >= 0");
  const AdaptivePolicy& a = adaptive;
  LSS_REQUIRE(a.check_every >= 0, "adaptive.check_every must be >= 0");
  LSS_REQUIRE(a.drift_threshold > 0.0,
              "adaptive.drift_threshold must be > 0");
  LSS_REQUIRE(a.drift_fraction > 0.0 && a.drift_fraction <= 1.0,
              "adaptive.drift_fraction must be in (0, 1]");
  LSS_REQUIRE(a.min_gain >= 0.0, "adaptive.min_gain must be >= 0");
  LSS_REQUIRE(a.max_migrations >= 0,
              "adaptive.max_migrations must be >= 0");
  for (const std::string& c : a.candidates)
    LSS_REQUIRE(scheme_family(c) == SchemeFamily::Simple,
                "adaptive.candidates entry '" + c +
                    "' is not a simple scheme (migration targets must "
                    "be simple-family)");
  Index prev = -1;
  for (const AdaptivePolicy::Forced& f : a.force) {
    LSS_REQUIRE(f.at >= 0, "adaptive.force entry has at = " +
                               std::to_string(f.at) + " (must be >= 0)");
    LSS_REQUIRE(f.at > prev,
                "adaptive.force entries must be strictly increasing "
                "in 'at' (got " +
                    std::to_string(f.at) + " after " +
                    std::to_string(prev) + ")");
    prev = f.at;
    LSS_REQUIRE(scheme_family(f.to) == SchemeFamily::Simple,
                "adaptive.force target '" + f.to +
                    "' is not a simple scheme (migration targets must "
                    "be simple-family)");
  }
}

json::Value SchedulerDesc::to_json_value() const {
  using json::Value;
  if (trivial()) return Value(scheme);
  json::Object doc{{"scheme", Value(scheme)}};
  if (!static_acps.empty()) {
    json::Array acps;
    for (double v : static_acps) acps.emplace_back(v);
    doc.emplace_back("static_acps", Value(std::move(acps)));
  }
  if (adaptive.active()) {
    const AdaptivePolicy def;
    json::Object a;
    if (adaptive.enabled) a.emplace_back("enabled", Value(true));
    if (adaptive.check_every != def.check_every)
      a.emplace_back("check_every", Value(adaptive.check_every));
    if (adaptive.drift_threshold != def.drift_threshold)
      a.emplace_back("drift_threshold", Value(adaptive.drift_threshold));
    if (adaptive.drift_fraction != def.drift_fraction)
      a.emplace_back("drift_fraction", Value(adaptive.drift_fraction));
    if (adaptive.min_gain != def.min_gain)
      a.emplace_back("min_gain", Value(adaptive.min_gain));
    if (adaptive.max_migrations != def.max_migrations)
      a.emplace_back("max_migrations", Value(adaptive.max_migrations));
    if (!adaptive.candidates.empty()) {
      json::Array cs;
      for (const std::string& c : adaptive.candidates) cs.emplace_back(c);
      a.emplace_back("candidates", Value(std::move(cs)));
    }
    if (adaptive.replay_seed != def.replay_seed)
      a.emplace_back("replay_seed",
                     Value(static_cast<std::int64_t>(adaptive.replay_seed)));
    if (!adaptive.force.empty()) {
      json::Array fs;
      for (const AdaptivePolicy::Forced& f : adaptive.force)
        fs.emplace_back(json::Object{{"at", Value(f.at)},
                                     {"to", Value(f.to)}});
      a.emplace_back("force", Value(std::move(fs)));
    }
    doc.emplace_back("adaptive", Value(std::move(a)));
  }
  return Value(std::move(doc));
}

SchedulerDesc SchedulerDesc::from_json_value(const json::Value& value,
                                             const std::string& what) {
  SchedulerDesc out;
  if (value.is_string()) {
    out.scheme = value.as_string();
    return out;
  }
  LSS_REQUIRE(value.is_object(),
              what + " must be a spec string or an object");
  for (const auto& [key, v] : value.as_object()) {
    require_known(key, desc_keys(), what);
    if (key == "scheme") {
      out.scheme = v.as_string();
    } else if (key == "static_acps") {
      for (const json::Value& a : v.as_array())
        out.static_acps.push_back(a.as_number());
    } else if (key == "adaptive") {
      out.adaptive = adaptive_from_json(v, what + " key 'adaptive'");
    }
  }
  return out;
}

std::vector<std::string> default_adaptive_candidates() {
  // Deterministic simple schemes spanning the chunk-size spectrum:
  // one static extreme, the classic decreasing-chunk family, and a
  // fixed-size middle ground. (ss is omitted — per-iteration grants
  // are never worth a migration in the regimes the replayer models.)
  return {"static", "css", "gss", "tss", "fss"};
}

}  // namespace lss
