// Load-imbalance measures over per-PE computation times.
#pragma once

#include <span>

namespace lss::metrics {

struct ImbalanceReport {
  double max_over_mean = 1.0;  ///< 1.0 == perfect balance
  double cov = 0.0;            ///< coefficient of variation
  double spread = 0.0;         ///< max - min (the paper's "gap")
};

ImbalanceReport imbalance(std::span<const double> per_pe_times);

}  // namespace lss::metrics
