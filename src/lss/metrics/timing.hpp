// Per-PE time breakdown — the quantity tabulated in the paper's
// Tables 2 and 3: T_com / T_wait / T_comp per slave.
#pragma once

#include <string>
#include <vector>

namespace lss::metrics {

struct TimeBreakdown {
  double t_com = 0.0;   ///< actively transferring messages
  double t_wait = 0.0;  ///< idle, waiting for work or for the master
  double t_comp = 0.0;  ///< computing loop iterations

  double busy_total() const { return t_com + t_wait + t_comp; }

  TimeBreakdown& operator+=(const TimeBreakdown& other);

  /// The paper's cell format: "2.7/17.5/3.5" (1 decimal).
  std::string to_cell(int decimals = 1) const;
};

TimeBreakdown operator+(TimeBreakdown a, const TimeBreakdown& b);

/// Column sums over a set of PEs.
TimeBreakdown sum(const std::vector<TimeBreakdown>& xs);

}  // namespace lss::metrics
