// Speedup series (paper Figures 4-7): S_p = T_serial / T_p, with
// T_serial the loop's time on one dedicated fast PE.
#pragma once

#include <string>
#include <vector>

namespace lss::metrics {

struct SpeedupPoint {
  int p = 0;
  double t_parallel = 0.0;
  double speedup = 0.0;
};

struct SpeedupSeries {
  std::string scheme;
  double t_serial = 0.0;
  std::vector<SpeedupPoint> points;

  void add(int p, double t_parallel);
};

/// Upper bound on achievable speedup for a heterogeneous cluster:
/// sum of speeds divided by the fastest speed (e.g. 3 fast + 5 slow
/// at ratio 3 gives (3*3 + 5*1)/3 = 4.67 — the paper's "S_p <= 4.5"
/// remark for Figure 6).
double speedup_bound(const std::vector<double>& speeds);

}  // namespace lss::metrics
