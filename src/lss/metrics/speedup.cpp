#include "lss/metrics/speedup.hpp"

#include <algorithm>

#include "lss/support/assert.hpp"

namespace lss::metrics {

void SpeedupSeries::add(int p, double t_parallel) {
  LSS_REQUIRE(t_parallel > 0.0, "parallel time must be positive");
  points.push_back(SpeedupPoint{p, t_parallel, t_serial / t_parallel});
}

double speedup_bound(const std::vector<double>& speeds) {
  LSS_REQUIRE(!speeds.empty(), "need at least one PE");
  double sum = 0.0, fastest = 0.0;
  for (double s : speeds) {
    LSS_REQUIRE(s > 0.0, "speeds must be positive");
    sum += s;
    fastest = std::max(fastest, s);
  }
  return sum / fastest;
}

}  // namespace lss::metrics
