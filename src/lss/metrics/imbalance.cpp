#include "lss/metrics/imbalance.hpp"

#include "lss/support/stats.hpp"

namespace lss::metrics {

ImbalanceReport imbalance(std::span<const double> per_pe_times) {
  ImbalanceReport out;
  if (per_pe_times.empty()) return out;
  const Summary s = summarize(per_pe_times);
  out.max_over_mean = s.mean > 0.0 ? s.max / s.mean : 1.0;
  out.cov = s.cov;
  out.spread = s.max - s.min;
  return out;
}

}  // namespace lss::metrics
