#include "lss/metrics/timing.hpp"

#include "lss/support/strings.hpp"

namespace lss::metrics {

TimeBreakdown& TimeBreakdown::operator+=(const TimeBreakdown& other) {
  t_com += other.t_com;
  t_wait += other.t_wait;
  t_comp += other.t_comp;
  return *this;
}

std::string TimeBreakdown::to_cell(int decimals) const {
  return fmt_fixed(t_com, decimals) + "/" + fmt_fixed(t_wait, decimals) +
         "/" + fmt_fixed(t_comp, decimals);
}

TimeBreakdown operator+(TimeBreakdown a, const TimeBreakdown& b) {
  a += b;
  return a;
}

TimeBreakdown sum(const std::vector<TimeBreakdown>& xs) {
  TimeBreakdown out;
  for (const TimeBreakdown& x : xs) out += x;
  return out;
}

}  // namespace lss::metrics
