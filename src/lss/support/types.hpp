// Core vocabulary types shared by all lss subsystems.
#pragma once

#include <cstdint>

#include "lss/support/assert.hpp"

namespace lss {

/// Loop-iteration index. Signed so arithmetic on differences is safe.
using Index = std::int64_t;

/// Half-open iteration range [begin, end).
struct Range {
  Index begin = 0;
  Index end = 0;

  Index size() const { return end - begin; }
  bool empty() const { return end <= begin; }
  bool contains(Index i) const { return i >= begin && i < end; }

  friend bool operator==(const Range&, const Range&) = default;
};

/// Splits [r.begin, r.end) at begin+n (n clamped to [0, size]).
inline Range take_front(Range& r, Index n) {
  LSS_REQUIRE(n >= 0, "cannot take a negative count");
  if (n > r.size()) n = r.size();
  Range front{r.begin, r.begin + n};
  r.begin += n;
  return front;
}

}  // namespace lss
