#include "lss/support/strings.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "lss/support/assert.hpp"

namespace lss {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

std::string fmt_fixed(double v, int decimals) {
  LSS_REQUIRE(decimals >= 0 && decimals <= 12, "unsupported precision");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

long long parse_int(std::string_view s) {
  s = trim(s);
  long long v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  LSS_REQUIRE(ec == std::errc{} && ptr == s.data() + s.size(),
              "malformed integer: '" + std::string(s) + "'");
  return v;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  LSS_REQUIRE(ec == std::errc{} && ptr == s.data() + s.size(),
              "malformed number: '" + std::string(s) + "'");
  return v;
}

}  // namespace lss
