// Allocation-amortizing FIFO: a vector plus a head index.
//
// std::deque allocates and frees a block every ~block-size pushes
// even when the queue's depth is bounded — which is exactly the
// steady state of the runtime's hot paths (worker pending windows,
// reactor outstanding pipelines, frame-decoder ready sets). This
// container instead reuses one contiguous buffer: pops advance a
// head index, and the dead prefix is recycled by compaction (a
// memmove, never an allocation) once it dominates the live range.
// After warm-up the buffer has grown to the queue's high-water depth
// and push/pop are allocation-free, which is what the data plane's
// zero-allocation gate (tests/test_dataplane.cpp) measures.
//
// Not thread-safe; callers that share one (mp::Mailbox) lock.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace lss {

template <typename T>
class RingFifo {
 public:
  bool empty() const { return head_ == items_.size(); }
  std::size_t size() const { return items_.size() - head_; }

  void push_back(T v) { items_.push_back(std::move(v)); }

  T& front() { return items_[head_]; }
  const T& front() const { return items_[head_]; }
  T& back() { return items_.back(); }
  const T& back() const { return items_.back(); }

  /// Pops and returns the head. The vacated slot is left moved-from,
  /// so element-owned resources (pooled buffers) are released
  /// immediately, not at the next compaction.
  T pop_front() {
    T v = std::move(items_[head_]);
    ++head_;
    compact_if_stale();
    return v;
  }

  /// Removes the element at `it` (a live-range iterator), shifting
  /// the tail left — O(n) moves, zero allocations.
  void erase(T* it) {
    items_.erase(items_.begin() + (it - items_.data()));
    compact_if_stale();
  }

  void clear() {
    items_.clear();
    head_ = 0;
  }

  // Live range [begin, end): iteration in FIFO order.
  T* begin() { return items_.data() + head_; }
  T* end() { return items_.data() + items_.size(); }
  const T* begin() const { return items_.data() + head_; }
  const T* end() const { return items_.data() + items_.size(); }

 private:
  void compact_if_stale() {
    if (head_ == items_.size()) {
      items_.clear();  // capacity kept
      head_ = 0;
    } else if (head_ >= 32 && head_ * 2 >= items_.size()) {
      items_.erase(items_.begin(),
                   items_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<T> items_;
  std::size_t head_ = 0;
};

}  // namespace lss
