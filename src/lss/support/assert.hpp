// Lightweight contract checking used across the library.
//
// LSS_REQUIRE  — precondition on public API arguments; always on.
// LSS_ASSERT   — internal invariant; always on (the library is not
//                performance-critical enough to justify silent UB).
//
// Violations throw lss::ContractError so tests can assert on misuse.
#pragma once

#include <stdexcept>
#include <string>

namespace lss {

/// Thrown when a precondition or internal invariant is violated.
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::string what = std::string(kind) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) what += " — " + msg;
  throw ContractError(what);
}
}  // namespace detail

}  // namespace lss

#define LSS_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::lss::detail::contract_fail("precondition", #expr, __FILE__,         \
                                   __LINE__, (msg));                        \
  } while (false)

#define LSS_ASSERT(expr, msg)                                               \
  do {                                                                      \
    if (!(expr))                                                            \
      ::lss::detail::contract_fail("invariant", #expr, __FILE__, __LINE__,  \
                                   (msg));                                  \
  } while (false)
