#include "lss/support/prng.hpp"

#include <cmath>

#include "lss/support/assert.hpp"

namespace lss {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::int64_t Xoshiro256::next_int(std::int64_t lo, std::int64_t hi) {
  LSS_REQUIRE(lo <= hi, "empty integer range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling for an unbiased draw.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Xoshiro256::next_normal() {
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Xoshiro256::next_exponential(double mean) {
  LSS_REQUIRE(mean > 0.0, "exponential mean must be positive");
  double u = 1.0 - next_double();
  return -mean * std::log(u);
}

}  // namespace lss
