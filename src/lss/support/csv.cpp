#include "lss/support/csv.hpp"

#include <ostream>

#include "lss/support/assert.hpp"

namespace lss {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> header)
    : os_(os), columns_(header.size()) {
  LSS_REQUIRE(columns_ > 0, "CSV needs at least one column");
  write_row(header);
  rows_ = 0;  // header does not count
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  LSS_REQUIRE(cells.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace lss
