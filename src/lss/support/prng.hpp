// Deterministic pseudo-random number generation.
//
// The library never uses std::random_device or global state: every
// stochastic component (synthetic workloads, load scripts, jittered
// timings) takes an explicit seed so simulations replay bit-identically.
#pragma once

#include <cstdint>

namespace lss {

/// SplitMix64 — used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
/// Satisfies UniformRandomBitGenerator so it can drive <random>
/// distributions when needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (no cached spare; deterministic).
  double next_normal();

  /// Exponential with the given mean (> 0).
  double next_exponential(double mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace lss
