// String utilities: split/trim/join and printf-free number formatting
// shared by the table/CSV writers and the scheme factories.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lss {

std::vector<std::string> split(std::string_view s, char sep);
std::string_view trim(std::string_view s);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view s);

/// Fixed-point formatting, e.g. fmt_fixed(3.14159, 2) == "3.14".
std::string fmt_fixed(double v, int decimals);

/// Parse helpers; throw lss::ContractError on malformed input.
long long parse_int(std::string_view s);
double parse_double(std::string_view s);

}  // namespace lss
