// Minimal CSV writer so bench binaries can optionally dump raw series
// (e.g. speedup curves) for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lss {

class CsvWriter {
 public:
  /// Writes the header immediately.
  CsvWriter(std::ostream& os, std::vector<std::string> header);

  void write_row(const std::vector<std::string>& cells);
  std::size_t rows_written() const { return rows_; }

  /// RFC-4180 quoting of a single field.
  static std::string escape(const std::string& field);

 private:
  std::ostream& os_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace lss
