// Minimal JSON document model: parse, build, serialize.
//
// The repo already *writes* JSON in several places (RunStats,
// exporters, benches) by string concatenation; the Job API (rt/job)
// also needs to *read* it — `--job-file` on the CLIs and the
// kTagJobSubmit payload are the same JSON text. This is a small,
// strict RFC 8259 subset parser: objects, arrays, strings (with the
// standard escapes, \uXXXX limited to BMP code points), numbers,
// booleans and null. No comments, no trailing commas, no NaN/Inf —
// a job file that is not plain JSON should fail loudly.
//
// Objects preserve insertion order (a vector of pairs, not a map) so
// round-tripped documents stay diffable, and key lookup is linear —
// fine for config-sized documents, not meant for megabyte payloads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lss::json {

class Value;

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() : kind_(Kind::Null) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(double v) : kind_(Kind::Number), num_(v) {}
  Value(int v) : kind_(Kind::Number), num_(v) {}
  Value(std::int64_t v) : kind_(Kind::Number), num_(static_cast<double>(v)) {}
  Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::String), str_(s) {}
  Value(std::vector<Value> a);
  Value(std::vector<std::pair<std::string, Value>> o);

  /// Parses one JSON document (surrounding whitespace allowed;
  /// trailing garbage rejected). Throws lss::ContractError with a
  /// byte offset on malformed input.
  static Value parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw lss::ContractError on a kind mismatch so
  /// a job file with e.g. a string where a number belongs names the
  /// problem instead of reading garbage.
  bool as_bool() const;
  double as_number() const;
  /// as_number() that also requires an integral value.
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::vector<std::pair<std::string, Value>>& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;

  /// Serializes canonically: `indent` < 0 for one line, otherwise
  /// pretty-printed with that many spaces per level.
  std::string dump(int indent = -1) const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Indirect so containers of Value can be members of Value.
  std::shared_ptr<std::vector<Value>> arr_;
  std::shared_ptr<std::vector<std::pair<std::string, Value>>> obj_;
};

/// The container shapes behind Kind::Array / Kind::Object. Objects
/// are ordered (a vector of pairs, not a map) — see the header note.
using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

/// JSON string escaping (quotes included) — shared with the
/// hand-rolled writers elsewhere in the tree.
std::string escape(std::string_view s);

/// Number formatting: integral values print without a fraction part,
/// everything else with enough digits to round-trip a double.
std::string format_number(double v);

}  // namespace lss::json
