#include "lss/support/json.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "lss/support/assert.hpp"

namespace lss::json {

Value::Value(Array a)
    : kind_(Kind::Array), arr_(std::make_shared<Array>(std::move(a))) {}

Value::Value(Object o)
    : kind_(Kind::Object), obj_(std::make_shared<Object>(std::move(o))) {}

bool Value::as_bool() const {
  LSS_REQUIRE(is_bool(), "JSON value is not a boolean");
  return bool_;
}

double Value::as_number() const {
  LSS_REQUIRE(is_number(), "JSON value is not a number");
  return num_;
}

std::int64_t Value::as_int() const {
  const double v = as_number();
  const double r = std::nearbyint(v);
  LSS_REQUIRE(r == v, "JSON number is not an integer");
  return static_cast<std::int64_t>(r);
}

const std::string& Value::as_string() const {
  LSS_REQUIRE(is_string(), "JSON value is not a string");
  return str_;
}

const Array& Value::as_array() const {
  LSS_REQUIRE(is_array(), "JSON value is not an array");
  return *arr_;
}

const Object& Value::as_object() const {
  LSS_REQUIRE(is_object(), "JSON value is not an object");
  return *obj_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : *obj_)
    if (k == key) return &v;
  return nullptr;
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Value::Kind::Null:
      return true;
    case Value::Kind::Bool:
      return a.bool_ == b.bool_;
    case Value::Kind::Number:
      return a.num_ == b.num_;
    case Value::Kind::String:
      return a.str_ == b.str_;
    case Value::Kind::Array:
      return *a.arr_ == *b.arr_;
    case Value::Kind::Object:
      return *a.obj_ == *b.obj_;
  }
  return false;
}

// ------------------------------------------------------------------ parsing

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    skip_ws();
    Value v = value();
    skip_ws();
    LSS_REQUIRE(pos_ == text_.size(),
                "trailing characters after JSON document at byte " +
                    std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ContractError("JSON parse error at byte " + std::to_string(pos_) +
                        ": " + what);
  }

  bool done() const { return pos_ >= text_.size(); }
  char peek() const {
    if (done()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  void skip_ws() {
    while (!done()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Value(string());
      case 't':
        if (literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (literal("null")) return Value();
        fail("invalid literal");
      default:
        return number();
    }
  }

  Value object() {
    expect('{');
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      skip_ws();
      out.emplace_back(std::move(key), value());
      skip_ws();
      const char c = take();
      if (c == '}') return Value(std::move(out));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value array() {
    expect('[');
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      out.push_back(value());
      skip_ws();
      const char c = take();
      if (c == ']') return Value(std::move(out));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDFFF)
            fail("surrogate pairs are not supported");
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (!done() && peek() == '-') ++pos_;
    while (!done() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (!done() && text_[pos_] == '.') {
      ++pos_;
      while (!done() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!done() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!done() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (!done() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("expected a value");
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) fail("malformed number '" + token + "'");
      return Value(v);
    } catch (const ContractError&) {
      throw;
    } catch (const std::exception&) {
      fail("malformed number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) { return Parser(text).document(); }

// -------------------------------------------------------------- serializing

std::string escape(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string format_number(double v) {
  LSS_REQUIRE(std::isfinite(v), "JSON cannot represent NaN or infinity");
  if (v == std::nearbyint(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::llround(v)));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    if (std::stod(shorter) == v) return shorter;
  }
  return buf;
}

namespace {

void dump_to(const Value& v, std::string& out, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.kind()) {
    case Value::Kind::Null:
      out += "null";
      return;
    case Value::Kind::Bool:
      out += v.as_bool() ? "true" : "false";
      return;
    case Value::Kind::Number:
      out += format_number(v.as_number());
      return;
    case Value::Kind::String:
      out += escape(v.as_string());
      return;
    case Value::Kind::Array: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        dump_to(a[i], out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      return;
    }
    case Value::Kind::Object: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        out += escape(o[i].first);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        dump_to(o[i].second, out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(*this, out, indent, 0);
  return out;
}

}  // namespace lss::json
