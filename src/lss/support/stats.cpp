#include "lss/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "lss/support/assert.hpp"

namespace lss {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return n_ == 0 ? 0.0 : min_; }

double Accumulator::max() const { return n_ == 0 ? 0.0 : max_; }

double Accumulator::cov() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

Summary summarize(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return Summary{acc.count(), acc.mean(), acc.stddev(), acc.min(),
                 acc.max(),   acc.sum(),  acc.cov()};
}

double quantile(std::span<const double> xs, double q) {
  LSS_REQUIRE(!xs.empty(), "quantile of an empty sample");
  LSS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double imbalance_ratio(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  Accumulator acc;
  for (double x : xs) acc.add(x);
  if (acc.mean() == 0.0) return 1.0;
  return acc.max() / acc.mean();
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  LSS_REQUIRE(bins > 0, "histogram needs at least one bin");
  LSS_REQUIRE(hi > lo, "histogram range must be non-empty");
  std::vector<std::size_t> out(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo) / width));
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++out[static_cast<std::size_t>(idx)];
  }
  return out;
}

}  // namespace lss
