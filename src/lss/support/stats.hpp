// Small descriptive-statistics helpers used by reports and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lss {

/// Streaming accumulator (Welford) for count/mean/variance/min/max.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  /// Coefficient of variation (stddev/mean); 0 if mean == 0.
  double cov() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Summary of a finished sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double cov = 0.0;
};

Summary summarize(std::span<const double> xs);

/// q-quantile (q in [0, 1]) with linear interpolation between order
/// statistics; throws on empty input.
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

/// Load-imbalance ratio max/mean (1.0 == perfectly balanced);
/// returns 1.0 for empty or all-zero input.
double imbalance_ratio(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values
/// outside the range are clamped into the edge buckets.
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins);

}  // namespace lss
