// ASCII table rendering for the benchmark harnesses, which print the
// paper's tables and figure series to stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lss {

/// Column-aligned text table. Usage:
///   TextTable t({"PE", "TSS", "FSS"});
///   t.add_row({"1", "2.7/17.5/3.5", "0.2/0.8/3.2"});
///   t.print(std::cout);
class TextTable {
 public:
  enum class Align { Left, Right };

  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Horizontal rule before the next added row.
  void add_rule();
  void set_align(std::size_t column, Align align);

  std::size_t num_rows() const { return rows_.size(); }
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> align_;
  bool pending_rule_ = false;
};

}  // namespace lss
