#include "lss/support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "lss/support/assert.hpp"

namespace lss {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)), align_(header_.size(), Align::Right) {
  LSS_REQUIRE(!header_.empty(), "table needs at least one column");
  align_[0] = Align::Left;
}

void TextTable::add_row(std::vector<std::string> cells) {
  LSS_REQUIRE(cells.size() == header_.size(),
              "row width must match header width");
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

void TextTable::set_align(std::size_t column, Align align) {
  LSS_REQUIRE(column < align_.size(), "column out of range");
  align_[column] = align;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const Row& r : rows_)
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      width[c] = std::max(width[c], r.cells[c].size());

  std::ostringstream os;
  const auto emit_cell = [&](const std::string& s, std::size_t c) {
    const std::size_t pad = width[c] - s.size();
    if (align_[c] == Align::Left)
      os << s << std::string(pad, ' ');
    else
      os << std::string(pad, ' ') << s;
  };
  const auto emit_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      if (c > 0) os << "-+-";
      os << std::string(width[c], '-');
    }
    os << '\n';
  };

  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) os << " | ";
    emit_cell(header_[c], c);
  }
  os << '\n';
  emit_rule();
  for (const Row& r : rows_) {
    if (r.rule_before) emit_rule();
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      if (c > 0) os << " | ";
      emit_cell(r.cells[c], c);
    }
    os << '\n';
  }
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

}  // namespace lss
