#include "lss/workload/spec.hpp"

#include <cstdint>
#include <map>

#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"
#include "lss/workload/mandelbrot.hpp"
#include "lss/workload/synthetic.hpp"

namespace lss {

namespace {

// Parameter keys each workload actually consumes — a key another
// workload understands is still an error here, mirroring
// the scheme factory ("mandelbrot:n=100" must not silently build the
// default image).
std::vector<std::string> allowed_keys(const std::string& kind) {
  if (kind == "uniform" || kind == "increasing" || kind == "decreasing")
    return {"n", "cost"};
  if (kind == "conditional") return {"n", "then", "else", "p", "seed"};
  if (kind == "irregular") return {"n", "mu", "sigma", "seed"};
  if (kind == "peaked") return {"n", "base", "amplitude", "center", "width"};
  if (kind == "mandelbrot") return {"width", "height", "max_iter", "kernel"};
  return {};
}

}  // namespace

std::shared_ptr<Workload> make_workload(std::string_view spec) {
  const std::string text{trim(spec)};
  const auto colon = text.find(':');
  const std::string kind = to_lower(trim(text.substr(0, colon)));
  LSS_REQUIRE(!kind.empty(), "empty workload spec; known workloads: " +
                                 join(known_workloads(), ", "));

  const auto known = known_workloads();
  bool kind_ok = false;
  for (const std::string& name : known) kind_ok = kind_ok || name == kind;
  LSS_REQUIRE(kind_ok, "unknown workload: '" + kind +
                           "'; known workloads: " + join(known, ", "));

  std::map<std::string, std::string> kv;
  if (colon != std::string::npos) {
    const std::vector<std::string> accepted = allowed_keys(kind);
    for (const std::string& pair : split(text.substr(colon + 1), ',')) {
      const auto eq = pair.find('=');
      LSS_REQUIRE(eq != std::string::npos,
                  "malformed parameter (want key=value): '" + pair + "'");
      const std::string key = to_lower(trim(pair.substr(0, eq)));
      bool key_ok = false;
      for (const std::string& k : accepted) key_ok = key_ok || k == key;
      LSS_REQUIRE(key_ok, "workload '" + kind +
                              "' does not accept parameter '" + key +
                              "' (accepts: " + join(accepted, ", ") + ")");
      kv[key] = std::string(trim(pair.substr(eq + 1)));
    }
  }

  const auto num = [&](const char* key, double dflt) {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : parse_double(it->second);
  };
  const auto integer = [&](const char* key, long long dflt) {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : parse_int(it->second);
  };

  if (kind == "mandelbrot") {
    MandelbrotParams p;
    p.width = static_cast<int>(integer("width", 200));
    p.height = static_cast<int>(integer("height", 120));
    p.max_iter = static_cast<int>(integer("max_iter", 100));
    if (const auto it = kv.find("kernel"); it != kv.end())
      p.kernel = mandelbrot_kernel_from_string(it->second);
    LSS_REQUIRE(p.width > 0 && p.height > 0 && p.max_iter > 0,
                "mandelbrot workload needs positive width/height/max_iter");
    return std::make_shared<MandelbrotWorkload>(p);
  }

  const Index n = integer("n", 4096);
  LSS_REQUIRE(n > 0, "workload '" + kind + "' needs n > 0");
  if (kind == "uniform")
    return std::make_shared<UniformWorkload>(n, num("cost", 1.0));
  if (kind == "increasing")
    return std::make_shared<LinearIncreasingWorkload>(n, num("cost", 1.0));
  if (kind == "decreasing")
    return std::make_shared<LinearDecreasingWorkload>(n, num("cost", 1.0));
  if (kind == "conditional")
    return std::make_shared<ConditionalWorkload>(
        n, num("then", 4.0), num("else", 1.0), num("p", 0.5),
        static_cast<std::uint64_t>(integer("seed", 42)));
  if (kind == "irregular")
    return std::make_shared<IrregularWorkload>(
        n, num("mu", 1.0), num("sigma", 0.5),
        static_cast<std::uint64_t>(integer("seed", 42)));
  if (kind == "peaked")
    return std::make_shared<PeakedWorkload>(n, num("base", 1.0),
                                            num("amplitude", 9.0),
                                            num("center", 0.5),
                                            num("width", 0.1));
  LSS_ASSERT(false, "unreachable: kind validated above");
  return nullptr;
}

std::vector<std::string> known_workloads() {
  return {"uniform",   "increasing", "decreasing", "conditional",
          "irregular", "peaked",     "mandelbrot"};
}

}  // namespace lss
