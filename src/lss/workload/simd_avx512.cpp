// AVX-512F Mandelbrot escape kernel — 8 doubles per vector with mask
// registers instead of blend vectors. Compiled with -mavx512f
// -ffp-contract=off: AVX-512F brings its own fused multiply-add
// forms, so suppressing contraction here is what keeps the rounding
// identical to the scalar kernel. Only dispatch (simd.cpp) may call
// this, and only after the cpuid probe.
#include <immintrin.h>

#include "lss/workload/simd.hpp"

namespace lss::simd::detail {

void mandelbrot_batch_avx512(double cx, const double* cy, int count,
                             int max_iter, int* out) {
  const __m512d vcx = _mm512_set1_pd(cx);
  const __m512d vfour = _mm512_set1_pd(4.0);
  const __m512d vtwo = _mm512_set1_pd(2.0);
  const __m512i vzero = _mm512_setzero_si512();
  int i = 0;
  for (; i + 8 <= count; i += 8) {
    __m512d zx = _mm512_setzero_pd();
    __m512d zy = _mm512_setzero_pd();
    const __m512d vcy = _mm512_loadu_pd(cy + i);
    __m512i cnt = vzero;  // 0 = not escaped yet
    for (int it = 1; it <= max_iter; ++it) {
      const __m512d zx2 = _mm512_mul_pd(zx, zx);
      const __m512d zy2 = _mm512_mul_pd(zy, zy);
      const __mmask8 esc = _mm512_cmp_pd_mask(_mm512_add_pd(zx2, zy2),
                                              vfour, _CMP_GT_OQ);
      const __mmask8 unlatched = _mm512_cmpeq_epi64_mask(cnt, vzero);
      // Latch the post-increment iteration number exactly once.
      cnt = _mm512_mask_mov_epi64(
          cnt, static_cast<__mmask8>(esc & unlatched),
          _mm512_set1_epi64(it));
      const __mmask8 active = static_cast<__mmask8>(unlatched & ~esc);
      if (active == 0) break;
      const __m512d nzx = _mm512_add_pd(_mm512_sub_pd(zx2, zy2), vcx);
      const __m512d nzy = _mm512_add_pd(
          _mm512_mul_pd(vtwo, _mm512_mul_pd(zx, zy)), vcy);
      zx = _mm512_mask_mov_pd(zx, active, nzx);
      zy = _mm512_mask_mov_pd(zy, active, nzy);
    }
    alignas(64) long long latched[8];
    _mm512_store_si512(latched, cnt);
    for (int l = 0; l < 8; ++l)
      out[i + l] =
          latched[l] == 0 ? max_iter : static_cast<int>(latched[l]);
  }
  // Partial vector: the scalar kernel keeps tail semantics identical.
  for (; i < count; ++i) out[i] = mandelbrot_escape(cx, cy[i], max_iter);
}

}  // namespace lss::simd::detail
