// AVX2 Mandelbrot escape kernel — 4 doubles per vector, counting
// form. Compiled with -mavx2 -ffp-contract=off (and nothing else
// from the wider build): the multiply/subtract/add sequence must
// round exactly like the scalar kernel's, so fused multiply-add
// contraction is forbidden. Only dispatch (simd.cpp) may call this,
// and only after the cpuid probe.
//
// Instead of latching the escape iteration with blends (compare
// cnt==0, blendv the iteration number in, blendv the z updates —
// three blendvs plus two integer compares per iteration), the loop
// counts: cnt -= active adds one per still-active lane (active is
// all-ones = -1), and an escape simply clears the lane's active bit,
// freezing its count at the escape iteration. The z recurrence runs
// unmasked — an escaped lane's z may blow up to inf/NaN, but the
// lane no longer feeds cnt, and _CMP_GT_OQ is ordered (false on
// NaN), so a diverged frozen lane can never re-arm anything. Lanes
// that never escape count all the way to max_iter, which is exactly
// the scalar kernel's return in that case.
#include <immintrin.h>

#include "lss/workload/simd.hpp"

namespace lss::simd::detail {

void mandelbrot_batch_avx2(double cx, const double* cy, int count,
                           int max_iter, int* out) {
  const __m256d vcx = _mm256_set1_pd(cx);
  const __m256d vfour = _mm256_set1_pd(4.0);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256d zx = _mm256_setzero_pd();
    __m256d zy = _mm256_setzero_pd();
    const __m256d vcy = _mm256_loadu_pd(cy + i);
    __m256i cnt = _mm256_setzero_si256();
    __m256i active = _mm256_set1_epi64x(-1);
    for (int it = 0; it < max_iter; ++it) {
      // The scalar ++n runs before its escape check: count this
      // iteration first, then decide whether it was the last.
      cnt = _mm256_sub_epi64(cnt, active);
      const __m256d zx2 = _mm256_mul_pd(zx, zx);
      const __m256d zy2 = _mm256_mul_pd(zy, zy);
      const __m256d esc =
          _mm256_cmp_pd(_mm256_add_pd(zx2, zy2), vfour, _CMP_GT_OQ);
      active = _mm256_andnot_si256(_mm256_castpd_si256(esc), active);
      if (_mm256_testz_si256(active, active)) break;
      const __m256d nzx = _mm256_add_pd(_mm256_sub_pd(zx2, zy2), vcx);
      zy = _mm256_add_pd(_mm256_mul_pd(vtwo, _mm256_mul_pd(zx, zy)), vcy);
      zx = nzx;
    }
    alignas(32) long long latched[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(latched), cnt);
    for (int l = 0; l < 4; ++l) out[i + l] = static_cast<int>(latched[l]);
  }
  // Partial vector: the scalar kernel keeps tail semantics identical.
  for (; i < count; ++i) out[i] = mandelbrot_escape(cx, cy[i], max_iter);
}

}  // namespace lss::simd::detail
