// AVX2 Mandelbrot escape kernel — 4 doubles per vector, blendv-style
// lane masking. Compiled with -mavx2 -ffp-contract=off (and nothing
// else from the wider build): the multiply/subtract/add sequence
// must round exactly like the scalar kernel's, so fused multiply-add
// contraction is forbidden. Only dispatch (simd.cpp) may call this,
// and only after the cpuid probe.
#include <immintrin.h>

#include "lss/workload/simd.hpp"

namespace lss::simd::detail {

void mandelbrot_batch_avx2(double cx, const double* cy, int count,
                           int max_iter, int* out) {
  const __m256d vcx = _mm256_set1_pd(cx);
  const __m256d vfour = _mm256_set1_pd(4.0);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  const __m256i vzero = _mm256_setzero_si256();
  int i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256d zx = _mm256_setzero_pd();
    __m256d zy = _mm256_setzero_pd();
    const __m256d vcy = _mm256_loadu_pd(cy + i);
    __m256i cnt = vzero;  // 0 = not escaped yet, like the batched loop
    for (int it = 1; it <= max_iter; ++it) {
      const __m256d zx2 = _mm256_mul_pd(zx, zx);
      const __m256d zy2 = _mm256_mul_pd(zy, zy);
      // Latch: lanes with cnt == 0 whose |z|^2 went past 4 record
      // this iteration number (the post-increment check).
      const __m256d esc =
          _mm256_cmp_pd(_mm256_add_pd(zx2, zy2), vfour, _CMP_GT_OQ);
      const __m256i unlatched = _mm256_cmpeq_epi64(cnt, vzero);
      const __m256i newly =
          _mm256_and_si256(_mm256_castpd_si256(esc), unlatched);
      cnt = _mm256_blendv_epi8(cnt, _mm256_set1_epi64x(it), newly);
      const __m256i active = _mm256_cmpeq_epi64(cnt, vzero);
      if (_mm256_testz_si256(active, active)) break;
      // z <- z^2 + c on active lanes; frozen lanes keep their z.
      const __m256d nzx = _mm256_add_pd(_mm256_sub_pd(zx2, zy2), vcx);
      const __m256d nzy = _mm256_add_pd(
          _mm256_mul_pd(vtwo, _mm256_mul_pd(zx, zy)), vcy);
      const __m256d actd = _mm256_castsi256_pd(active);
      zx = _mm256_blendv_pd(zx, nzx, actd);
      zy = _mm256_blendv_pd(zy, nzy, actd);
    }
    alignas(32) long long latched[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(latched), cnt);
    for (int l = 0; l < 4; ++l)
      out[i + l] =
          latched[l] == 0 ? max_iter : static_cast<int>(latched[l]);
  }
  // Partial vector: the scalar kernel keeps tail semantics identical.
  for (; i < count; ++i) out[i] = mandelbrot_escape(cx, cy[i], max_iter);
}

}  // namespace lss::simd::detail
