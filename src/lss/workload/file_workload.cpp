#include "lss/workload/file_workload.hpp"

#include <fstream>
#include <sstream>

#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss {

FileWorkload::FileWorkload(std::vector<double> costs, std::string name)
    : costs_(std::move(costs)), name_(std::move(name)) {
  for (double c : costs_)
    LSS_REQUIRE(c > 0.0, "trace costs must be positive");
}

FileWorkload FileWorkload::from_stream(std::istream& in, std::string name) {
  std::vector<double> costs;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;
    double v = 0.0;
    try {
      v = parse_double(line);
    } catch (const ContractError&) {
      LSS_REQUIRE(false, "trace line " + std::to_string(line_no) +
                             ": not a number: '" + std::string(line) + "'");
    }
    LSS_REQUIRE(v > 0.0, "trace line " + std::to_string(line_no) +
                             ": costs must be positive");
    costs.push_back(v);
  }
  return FileWorkload(std::move(costs), std::move(name));
}

FileWorkload FileWorkload::from_string(std::string_view text,
                                       std::string name) {
  std::istringstream in{std::string(text)};
  return from_stream(in, std::move(name));
}

FileWorkload FileWorkload::from_file(const std::string& path) {
  std::ifstream in(path);
  LSS_REQUIRE(in.good(), "cannot open workload trace: " + path);
  // Name the workload after the file's basename.
  const auto slash = path.find_last_of('/');
  return from_stream(
      in, slash == std::string::npos ? path : path.substr(slash + 1));
}

double FileWorkload::cost(Index i) const {
  LSS_REQUIRE(i >= 0 && i < size(), "iteration index out of range");
  return costs_[static_cast<std::size_t>(i)];
}

void FileWorkload::save(std::ostream& os) const {
  os << "# lss workload trace: " << name_ << " (" << costs_.size()
     << " iterations)\n";
  for (double c : costs_) os << c << '\n';
}

}  // namespace lss
