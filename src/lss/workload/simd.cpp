#include "lss/workload/simd.hpp"

#include "lss/support/assert.hpp"
#include "lss/workload/mandelbrot.hpp"

namespace lss::simd {

namespace {

bool cpu_supports(Isa isa) {
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case Isa::Portable:
      return true;
    case Isa::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Isa::Avx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
#endif
  return isa == Isa::Portable;
}

}  // namespace

Isa isa_from_string(const std::string& s) {
  if (s == "portable") return Isa::Portable;
  if (s == "avx2") return Isa::Avx2;
  if (s == "avx512") return Isa::Avx512;
  LSS_REQUIRE(false,
              "unknown simd isa '" + s + "' (want portable|avx2|avx512)");
  return Isa::Portable;
}

std::string to_string(Isa isa) {
  switch (isa) {
    case Isa::Avx2:
      return "avx2";
    case Isa::Avx512:
      return "avx512";
    case Isa::Portable:
      break;
  }
  return "portable";
}

bool isa_compiled(Isa isa) {
  switch (isa) {
    case Isa::Portable:
      return true;
    case Isa::Avx2:
#if LSS_SIMD_AVX2
      return true;
#else
      return false;
#endif
    case Isa::Avx512:
#if LSS_SIMD_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool isa_available(Isa isa) {
  static const bool avx2 = isa_compiled(Isa::Avx2) && cpu_supports(Isa::Avx2);
  static const bool avx512 =
      isa_compiled(Isa::Avx512) && cpu_supports(Isa::Avx512);
  switch (isa) {
    case Isa::Avx2:
      return avx2;
    case Isa::Avx512:
      return avx512;
    case Isa::Portable:
      break;
  }
  return true;
}

Isa best_isa() {
  if (isa_available(Isa::Avx512)) return Isa::Avx512;
  if (isa_available(Isa::Avx2)) return Isa::Avx2;
  return Isa::Portable;
}

MandelbrotBatchFn mandelbrot_batch_fn(Isa isa) {
  LSS_REQUIRE(isa_available(isa),
              "simd isa '" + to_string(isa) + "' is not available: " +
                  (isa_compiled(isa) ? "the cpu does not report the feature"
                                     : "not compiled into this binary"));
  switch (isa) {
    case Isa::Avx2:
#if LSS_SIMD_AVX2
      return &detail::mandelbrot_batch_avx2;
#else
      break;
#endif
    case Isa::Avx512:
#if LSS_SIMD_AVX512
      return &detail::mandelbrot_batch_avx512;
#else
      break;
#endif
    case Isa::Portable:
      break;
  }
  return &mandelbrot_escape_batch;
}

}  // namespace lss::simd
