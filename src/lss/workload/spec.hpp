// Construction of workloads by name, for job files and the daemon.
//
// A JobSpec travelling over the wire (rt/job, svc/protocol) cannot
// carry a `std::shared_ptr<Workload>`; it carries this spec string
// instead and both ends materialize the same loop. Same grammar and
// same unknown-key discipline as the scheme factory:
//
//   name[:key=value[,key=value...]]
//     uniform[:n=4096,cost=1]
//     increasing[:n=4096,cost=1]   (linearly increasing cost)
//     decreasing[:n=4096,cost=1]
//     conditional[:n=4096,then=4,else=1,p=0.5,seed=42]
//     irregular[:n=4096,mu=1,sigma=0.5,seed=42]
//     peaked[:n=4096,base=1,amplitude=9,center=0.5,width=0.1]
//     mandelbrot[:width=200,height=120,max_iter=100]
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lss/workload/workload.hpp"

namespace lss {

/// Builds the named workload. Throws lss::ContractError on an unknown
/// name, an unknown key (named, with the accepted list), or an
/// out-of-range value.
std::shared_ptr<Workload> make_workload(std::string_view spec);

/// Names make_workload() understands.
std::vector<std::string> known_workloads();

}  // namespace lss
