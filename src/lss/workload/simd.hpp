// Runtime SIMD dispatch for the Mandelbrot escape kernel (DESIGN.md
// §17): the batched 8-wide portable kernel stays the semantic ground
// truth, and hand-vectorized AVX2 / AVX-512 implementations of the
// *same* recurrence are selected at runtime from a cpuid probe.
//
// The contract is bit identity: every implementation performs the
// identical IEEE double operations per point (mul, sub, add — never
// a fused multiply-add, which rounds once instead of twice), latches
// a lane's escape count the first time |z|^2 > 4 is observed after
// the increment, and reports max_iter for points that never escape.
// A differential test (test_mandelbrot_simd) holds every compiled
// path to the scalar kernel's exact counts.
//
// Each ISA implementation lives in its own translation unit compiled
// with just that ISA's -m flags (and -ffp-contract=off), so the
// baseline build never emits an instruction the host might not have;
// dispatch picks an implementation only when BOTH the binary carries
// it and the cpu reports the feature.
#pragma once

#include <string>

namespace lss {

// Redeclared from mandelbrot.hpp so the ISA translation units can
// share the scalar tail without pulling wider headers into code
// compiled under non-baseline -m flags.
int mandelbrot_escape(double cx, double cy, int max_iter);

namespace simd {

enum class Isa {
  Portable,  ///< the auto-vectorizable batched loop (always present)
  Avx2,      ///< 4 × double per vector, blendv masking
  Avx512,    ///< 8 × double per vector, mask registers
};

/// Parses "portable" | "avx2" | "avx512"; throws lss::ContractError.
Isa isa_from_string(const std::string& s);
std::string to_string(Isa isa);

/// Was the implementation compiled into this binary? (The compiler
/// may not support the -m flags — see the CMake guard.)
bool isa_compiled(Isa isa);

/// Compiled AND the cpu reports the feature (cpuid probe, cached).
bool isa_available(Isa isa);

/// The widest available ISA — what `kernel=auto` resolves to.
Isa best_isa();

/// Signature shared with mandelbrot_escape_batch: escape counts of
/// `count` points at (cx, cy[i]) into out[i].
using MandelbrotBatchFn = void (*)(double cx, const double* cy, int count,
                                   int max_iter, int* out);

/// The implementation for `isa`. Throws lss::ContractError when the
/// ISA is not available on this host — an explicitly requested
/// kernel must fail loudly, not silently degrade.
MandelbrotBatchFn mandelbrot_batch_fn(Isa isa);

namespace detail {
// Defined in simd_avx2.cpp / simd_avx512.cpp when the compiler can
// build them (LSS_SIMD_AVX2 / LSS_SIMD_AVX512).
void mandelbrot_batch_avx2(double cx, const double* cy, int count,
                           int max_iter, int* out);
void mandelbrot_batch_avx512(double cx, const double* cy, int count,
                             int max_iter, int* out);
}  // namespace detail

}  // namespace simd
}  // namespace lss
