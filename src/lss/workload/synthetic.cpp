#include "lss/workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "lss/support/assert.hpp"
#include "lss/support/prng.hpp"

namespace lss {

namespace {
void check_iterations(Index iterations) {
  LSS_REQUIRE(iterations >= 0, "iteration count must be non-negative");
}
void check_index(Index i, Index n) {
  LSS_REQUIRE(i >= 0 && i < n, "iteration index out of range");
}
}  // namespace

UniformWorkload::UniformWorkload(Index iterations, double body_cost)
    : iterations_(iterations), body_cost_(body_cost) {
  check_iterations(iterations);
  LSS_REQUIRE(body_cost > 0.0, "body cost must be positive");
}

double UniformWorkload::cost(Index i) const {
  check_index(i, iterations_);
  return body_cost_;
}

LinearIncreasingWorkload::LinearIncreasingWorkload(Index iterations,
                                                   double body_cost)
    : iterations_(iterations), body_cost_(body_cost) {
  check_iterations(iterations);
  LSS_REQUIRE(body_cost > 0.0, "body cost must be positive");
}

double LinearIncreasingWorkload::cost(Index i) const {
  check_index(i, iterations_);
  return static_cast<double>(i + 1) * body_cost_;
}

LinearDecreasingWorkload::LinearDecreasingWorkload(Index iterations,
                                                   double body_cost)
    : iterations_(iterations), body_cost_(body_cost) {
  check_iterations(iterations);
  LSS_REQUIRE(body_cost > 0.0, "body cost must be positive");
}

double LinearDecreasingWorkload::cost(Index i) const {
  check_index(i, iterations_);
  return static_cast<double>(iterations_ - i) * body_cost_;
}

ConditionalWorkload::ConditionalWorkload(Index iterations, double then_cost,
                                         double else_cost,
                                         double then_probability,
                                         std::uint64_t seed) {
  check_iterations(iterations);
  LSS_REQUIRE(then_cost > 0.0 && else_cost > 0.0, "costs must be positive");
  LSS_REQUIRE(then_probability >= 0.0 && then_probability <= 1.0,
              "probability must be in [0, 1]");
  Xoshiro256 rng(seed);
  cost_.reserve(static_cast<std::size_t>(iterations));
  for (Index i = 0; i < iterations; ++i)
    cost_.push_back(rng.next_double() < then_probability ? then_cost
                                                         : else_cost);
}

Index ConditionalWorkload::size() const {
  return static_cast<Index>(cost_.size());
}

double ConditionalWorkload::cost(Index i) const {
  check_index(i, size());
  return cost_[static_cast<std::size_t>(i)];
}

IrregularWorkload::IrregularWorkload(Index iterations, double mu,
                                     double sigma, std::uint64_t seed) {
  check_iterations(iterations);
  LSS_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  Xoshiro256 rng(seed);
  cost_.reserve(static_cast<std::size_t>(iterations));
  for (Index i = 0; i < iterations; ++i)
    cost_.push_back(std::max(1.0, std::exp(mu + sigma * rng.next_normal())));
}

Index IrregularWorkload::size() const {
  return static_cast<Index>(cost_.size());
}

double IrregularWorkload::cost(Index i) const {
  check_index(i, size());
  return cost_[static_cast<std::size_t>(i)];
}

PeakedWorkload::PeakedWorkload(Index iterations, double base,
                               double amplitude, double center_fraction,
                               double width_fraction)
    : iterations_(iterations),
      base_(base),
      amplitude_(amplitude),
      center_(center_fraction * static_cast<double>(iterations)),
      width_(width_fraction * static_cast<double>(iterations)) {
  check_iterations(iterations);
  LSS_REQUIRE(base > 0.0, "base cost must be positive");
  LSS_REQUIRE(amplitude >= 0.0, "amplitude must be non-negative");
  LSS_REQUIRE(width_fraction > 0.0, "width must be positive");
}

double PeakedWorkload::cost(Index i) const {
  check_index(i, iterations_);
  const double d = (static_cast<double>(i) - center_) / width_;
  return base_ + amplitude_ * std::exp(-d * d);
}

}  // namespace lss
