#include "lss/workload/mandelbrot.hpp"

#include <ostream>

#include "lss/support/assert.hpp"

namespace lss {

MandelbrotParams MandelbrotParams::paper(int width, int height) {
  MandelbrotParams p;
  p.width = width;
  p.height = height;
  return p;
}

int mandelbrot_escape(double cx, double cy, int max_iter) {
  double zx = 0.0, zy = 0.0;
  int n = 0;
  while (n < max_iter) {
    const double zx2 = zx * zx;
    const double zy2 = zy * zy;
    ++n;
    if (zx2 + zy2 > 4.0) break;
    const double nzx = zx2 - zy2 + cx;
    zy = 2.0 * zx * zy + cy;
    zx = nzx;
  }
  return n;
}

MandelbrotWorkload::MandelbrotWorkload(MandelbrotParams params)
    : params_(params) {
  LSS_REQUIRE(params_.width > 0 && params_.height > 0,
              "window must be non-empty");
  LSS_REQUIRE(params_.max_iter > 0, "max_iter must be positive");
  LSS_REQUIRE(params_.x_max > params_.x_min && params_.y_max > params_.y_min,
              "domain must be non-empty");
  column_cost_.resize(static_cast<std::size_t>(params_.width));
  image_.assign(static_cast<std::size_t>(params_.width) *
                    static_cast<std::size_t>(params_.height),
                0);
  for (int c = 0; c < params_.width; ++c) {
    double sum = 0.0;
    const double cx = col_x(c);
    for (int r = 0; r < params_.height; ++r)
      sum += mandelbrot_escape(cx, row_y(r), params_.max_iter);
    column_cost_[static_cast<std::size_t>(c)] = sum;
  }
}

std::string MandelbrotWorkload::name() const {
  return "mandelbrot-" + std::to_string(params_.width) + "x" +
         std::to_string(params_.height);
}

double MandelbrotWorkload::cost(Index i) const {
  LSS_REQUIRE(i >= 0 && i < size(), "column index out of range");
  return column_cost_[static_cast<std::size_t>(i)];
}

void MandelbrotWorkload::execute(Index i) {
  LSS_REQUIRE(i >= 0 && i < size(), "column index out of range");
  const int c = static_cast<int>(i);
  const double cx = col_x(c);
  const std::size_t base = static_cast<std::size_t>(c) *
                           static_cast<std::size_t>(params_.height);
  for (int r = 0; r < params_.height; ++r)
    image_[base + static_cast<std::size_t>(r)] = static_cast<std::uint16_t>(
        mandelbrot_escape(cx, row_y(r), params_.max_iter));
}

int MandelbrotWorkload::pixel(int col, int row) const {
  LSS_REQUIRE(col >= 0 && col < params_.width, "column out of range");
  LSS_REQUIRE(row >= 0 && row < params_.height, "row out of range");
  return mandelbrot_escape(col_x(col), row_y(row), params_.max_iter);
}

void MandelbrotWorkload::render_pgm(std::ostream& os) {
  for (Index i = 0; i < size(); ++i) execute(i);
  os << "P5\n" << params_.width << ' ' << params_.height << "\n255\n";
  // PGM is row-major; the buffer is column-major.
  for (int r = 0; r < params_.height; ++r) {
    for (int c = 0; c < params_.width; ++c) {
      const std::uint16_t v =
          image_[static_cast<std::size_t>(c) *
                     static_cast<std::size_t>(params_.height) +
                 static_cast<std::size_t>(r)];
      // Interior points (v == max_iter) render black; exterior shaded
      // by escape speed.
      const unsigned char shade =
          v >= params_.max_iter
              ? 0
              : static_cast<unsigned char>(255 - (v * 255) / params_.max_iter);
      os.put(static_cast<char>(shade));
    }
  }
}

double MandelbrotWorkload::col_x(int col) const {
  return params_.x_min + (params_.x_max - params_.x_min) *
                             (static_cast<double>(col) + 0.5) /
                             static_cast<double>(params_.width);
}

double MandelbrotWorkload::row_y(int row) const {
  return params_.y_min + (params_.y_max - params_.y_min) *
                             (static_cast<double>(row) + 0.5) /
                             static_cast<double>(params_.height);
}

}  // namespace lss
