#include "lss/workload/mandelbrot.hpp"

#include <ostream>
#include <vector>

#include "lss/support/assert.hpp"

namespace lss {

MandelbrotKernel mandelbrot_kernel_from_string(const std::string& s) {
  if (s == "scalar") return MandelbrotKernel::Scalar;
  if (s == "batched") return MandelbrotKernel::Batched;
  if (s == "avx2") return MandelbrotKernel::Avx2;
  if (s == "avx512") return MandelbrotKernel::Avx512;
  if (s == "auto") return MandelbrotKernel::Auto;
  LSS_REQUIRE(false, "unknown mandelbrot kernel '" + s +
                         "' (want auto|scalar|batched|avx2|avx512)");
  return MandelbrotKernel::Scalar;
}

std::string to_string(MandelbrotKernel kernel) {
  switch (kernel) {
    case MandelbrotKernel::Batched:
      return "batched";
    case MandelbrotKernel::Avx2:
      return "avx2";
    case MandelbrotKernel::Avx512:
      return "avx512";
    case MandelbrotKernel::Auto:
      return "auto";
    case MandelbrotKernel::Scalar:
      break;
  }
  return "scalar";
}

MandelbrotParams MandelbrotParams::paper(int width, int height) {
  MandelbrotParams p;
  p.width = width;
  p.height = height;
  return p;
}

int mandelbrot_escape(double cx, double cy, int max_iter) {
  double zx = 0.0, zy = 0.0;
  int n = 0;
  while (n < max_iter) {
    const double zx2 = zx * zx;
    const double zy2 = zy * zy;
    ++n;
    if (zx2 + zy2 > 4.0) break;
    const double nzx = zx2 - zy2 + cx;
    zy = 2.0 * zx * zy + cy;
    zx = nzx;
  }
  return n;
}

void mandelbrot_escape_batch(double cx, const double* cy, int count,
                             int max_iter, int* out) {
  constexpr int W = kMandelbrotBatch;
  int i = 0;
  for (; i + W <= count; i += W) {
    // Mask form of the scalar loop: lane l runs the identical
    // recurrence, latches its escape count the first time
    // |z|^2 > 4 (checked *after* incrementing, like the scalar ++n),
    // then freezes. All lane operations are select-style, so the
    // inner loop vectorizes without intrinsics.
    double zx[W] = {}, zy[W] = {};
    double cyv[W];
    int cnt[W] = {};  // 0 = not escaped yet
    for (int l = 0; l < W; ++l) cyv[l] = cy[i + l];
    for (int it = 1; it <= max_iter; ++it) {
      int active_lanes = 0;
      for (int l = 0; l < W; ++l) {
        const double zx2 = zx[l] * zx[l];
        const double zy2 = zy[l] * zy[l];
        if (cnt[l] == 0 && zx2 + zy2 > 4.0) cnt[l] = it;
        const bool active = cnt[l] == 0;
        active_lanes += active ? 1 : 0;
        const double nzx = zx2 - zy2 + cx;
        const double nzy = 2.0 * zx[l] * zy[l] + cyv[l];
        zx[l] = active ? nzx : zx[l];
        zy[l] = active ? nzy : zy[l];
      }
      if (active_lanes == 0) break;
    }
    for (int l = 0; l < W; ++l)
      out[i + l] = cnt[l] == 0 ? max_iter : cnt[l];
  }
  // Partial batch: the scalar kernel keeps tail semantics identical.
  for (; i < count; ++i) out[i] = mandelbrot_escape(cx, cy[i], max_iter);
}

namespace {

/// Auto resolves once, at workload construction: the widest ISA the
/// cpuid probe reports, else the portable batched loop. An explicit
/// avx2/avx512 request on a host without it throws here (inside
/// mandelbrot_batch_fn) rather than silently degrading.
MandelbrotKernel resolve_kernel(MandelbrotKernel kernel) {
  if (kernel != MandelbrotKernel::Auto) return kernel;
  switch (simd::best_isa()) {
    case simd::Isa::Avx512:
      return MandelbrotKernel::Avx512;
    case simd::Isa::Avx2:
      return MandelbrotKernel::Avx2;
    case simd::Isa::Portable:
      break;
  }
  return MandelbrotKernel::Batched;
}

simd::MandelbrotBatchFn kernel_batch_fn(MandelbrotKernel kernel) {
  switch (kernel) {
    case MandelbrotKernel::Batched:
      return &mandelbrot_escape_batch;
    case MandelbrotKernel::Avx2:
      return simd::mandelbrot_batch_fn(simd::Isa::Avx2);
    case MandelbrotKernel::Avx512:
      return simd::mandelbrot_batch_fn(simd::Isa::Avx512);
    default:
      return nullptr;  // Scalar: the point-at-a-time loop
  }
}

}  // namespace

MandelbrotWorkload::MandelbrotWorkload(MandelbrotParams params)
    : params_(params) {
  LSS_REQUIRE(params_.width > 0 && params_.height > 0,
              "window must be non-empty");
  LSS_REQUIRE(params_.max_iter > 0, "max_iter must be positive");
  LSS_REQUIRE(params_.x_max > params_.x_min && params_.y_max > params_.y_min,
              "domain must be non-empty");
  params_.kernel = resolve_kernel(params_.kernel);
  batch_fn_ = kernel_batch_fn(params_.kernel);
  column_cost_.resize(static_cast<std::size_t>(params_.width));
  image_.assign(static_cast<std::size_t>(params_.width) *
                    static_cast<std::size_t>(params_.height),
                0);
  std::vector<int> counts(static_cast<std::size_t>(params_.height));
  for (int c = 0; c < params_.width; ++c) {
    column_counts(c, counts.data());
    double sum = 0.0;
    for (int n : counts) sum += n;
    column_cost_[static_cast<std::size_t>(c)] = sum;
  }
}

void MandelbrotWorkload::column_counts(int c, int* out) const {
  const double cx = col_x(c);
  const int h = params_.height;
  if (batch_fn_ != nullptr) {
    std::vector<double> cy(static_cast<std::size_t>(h));
    for (int r = 0; r < h; ++r) cy[static_cast<std::size_t>(r)] = row_y(r);
    batch_fn_(cx, cy.data(), h, params_.max_iter, out);
    return;
  }
  for (int r = 0; r < h; ++r)
    out[r] = mandelbrot_escape(cx, row_y(r), params_.max_iter);
}

std::string MandelbrotWorkload::name() const {
  std::string n = "mandelbrot-" + std::to_string(params_.width) + "x" +
                  std::to_string(params_.height);
  // The kernel here is always the *resolved* one, so "auto" surfaces
  // as what it actually picked.
  if (params_.kernel != MandelbrotKernel::Scalar)
    n += "-" + to_string(params_.kernel);
  return n;
}

double MandelbrotWorkload::cost(Index i) const {
  LSS_REQUIRE(i >= 0 && i < size(), "column index out of range");
  return column_cost_[static_cast<std::size_t>(i)];
}

void MandelbrotWorkload::execute(Index i) {
  LSS_REQUIRE(i >= 0 && i < size(), "column index out of range");
  const int c = static_cast<int>(i);
  const std::size_t base = static_cast<std::size_t>(c) *
                           static_cast<std::size_t>(params_.height);
  // Per-call scratch: execute() runs concurrently for distinct
  // columns, so nothing here may be shared.
  std::vector<int> counts(static_cast<std::size_t>(params_.height));
  column_counts(c, counts.data());
  for (int r = 0; r < params_.height; ++r)
    image_[base + static_cast<std::size_t>(r)] =
        static_cast<std::uint16_t>(counts[static_cast<std::size_t>(r)]);
}

int MandelbrotWorkload::pixel(int col, int row) const {
  LSS_REQUIRE(col >= 0 && col < params_.width, "column out of range");
  LSS_REQUIRE(row >= 0 && row < params_.height, "row out of range");
  return mandelbrot_escape(col_x(col), row_y(row), params_.max_iter);
}

void MandelbrotWorkload::render_pgm(std::ostream& os) {
  for (Index i = 0; i < size(); ++i) execute(i);
  os << "P5\n" << params_.width << ' ' << params_.height << "\n255\n";
  // PGM is row-major; the buffer is column-major.
  for (int r = 0; r < params_.height; ++r) {
    for (int c = 0; c < params_.width; ++c) {
      const std::uint16_t v =
          image_[static_cast<std::size_t>(c) *
                     static_cast<std::size_t>(params_.height) +
                 static_cast<std::size_t>(r)];
      // Interior points (v == max_iter) render black; exterior shaded
      // by escape speed.
      const unsigned char shade =
          v >= params_.max_iter
              ? 0
              : static_cast<unsigned char>(255 - (v * 255) / params_.max_iter);
      os.put(static_cast<char>(shade));
    }
  }
}

double MandelbrotWorkload::col_x(int col) const {
  return params_.x_min + (params_.x_max - params_.x_min) *
                             (static_cast<double>(col) + 0.5) /
                             static_cast<double>(params_.width);
}

double MandelbrotWorkload::row_y(int row) const {
  return params_.y_min + (params_.y_max - params_.y_min) *
                             (static_cast<double>(row) + 0.5) /
                             static_cast<double>(params_.height);
}

}  // namespace lss
