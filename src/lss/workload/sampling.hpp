// Sampled loop reordering (§2.1): with sampling frequency S_f, take
// first the iterations with i mod S_f == 0, then i mod S_f == 1, ...
// For peaked/irregular loops this spreads the expensive region across
// the schedule, making the loop "appear more uniform" (Figure 1b).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "lss/support/types.hpp"
#include "lss/workload/workload.hpp"

namespace lss {

/// perm[k] = original index of the iteration executed at position k.
/// sampling_permutation(8, 4) == {0,4, 1,5, 2,6, 3,7}.
std::vector<Index> sampling_permutation(Index n, Index sampling_frequency);

/// inv[perm[k]] == k. Requires perm to be a permutation of 0..n-1.
std::vector<Index> inverse_permutation(std::span<const Index> perm);

/// Convenience: wrap a workload in its S_f-sampled reordering.
std::shared_ptr<PermutedWorkload> sampled(
    std::shared_ptr<const Workload> base, Index sampling_frequency);

}  // namespace lss
