// Linear-algebra-flavoured loop workloads: the scientific kernels
// whose parallel loops motivated the self-scheduling literature.
#pragma once

#include <cstdint>
#include <vector>

#include "lss/workload/workload.hpp"

namespace lss {

/// Sparse matrix-vector product by rows: iteration i = row i, cost
/// proportional to the row's nonzero count. Row populations follow a
/// truncated power law (seeded), the classic source of irregular
/// loops in scientific codes.
class SparseMatVecWorkload final : public Workload {
 public:
  /// `rows` >= 0, `mean_nnz` >= 1, `skew` > 0 (larger = heavier tail;
  /// 1.0 ~ mild, 2.0 ~ a few very dense rows).
  SparseMatVecWorkload(Index rows, double mean_nnz, double skew,
                       std::uint64_t seed);

  std::string name() const override { return "spmv"; }
  Index size() const override;
  double cost(Index i) const override;

  /// Row nonzero count (== cost; exposed for tests).
  Index nnz(Index row) const;
  Index total_nnz() const;

 private:
  std::vector<Index> nnz_;
  Index total_ = 0;
};

/// Dense triangular solve by rows: row i depends on i prior entries,
/// cost(i) = (i+1) * flop_cost. (The forward-substitution loop body;
/// the *outer* loop here is assumed restructured to be parallel, as
/// in wavefront formulations.)
class TriangularWorkload final : public Workload {
 public:
  TriangularWorkload(Index rows, double flop_cost = 2.0);

  std::string name() const override { return "triangular"; }
  Index size() const override { return rows_; }
  double cost(Index i) const override;

 private:
  Index rows_;
  double flop_cost_;
};

}  // namespace lss
