// Mandelbrot-set workload — the paper's test problem (§2.1, Figures 1-2).
//
// One loop iteration computes one image *column* (the smallest
// schedulable unit in the paper). The cost of a column is the total
// number of escape-test iterations over its pixels, which is exactly
// the "number of basic computations" plotted in Figure 1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "lss/workload/simd.hpp"
#include "lss/workload/workload.hpp"

namespace lss {

/// How MandelbrotWorkload computes escape counts. Every kernel
/// produces bit-identical counts (same IEEE operations per point, no
/// fused multiply-add); they differ only in instruction selection.
enum class MandelbrotKernel {
  Scalar,   ///< one point at a time, early-exit loop (the original)
  Batched,  ///< 8-wide branchless batches (auto-vectorizable)
  Avx2,     ///< hand-vectorized 4-wide (simd_avx2.cpp); cpuid-gated
  Avx512,   ///< hand-vectorized 8-wide (simd_avx512.cpp); cpuid-gated
  Auto,     ///< widest ISA this host offers, else Batched
};

/// Parses "scalar" | "batched" | "avx2" | "avx512" | "auto"; throws
/// lss::ContractError otherwise.
MandelbrotKernel mandelbrot_kernel_from_string(const std::string& s);
std::string to_string(MandelbrotKernel kernel);

struct MandelbrotParams {
  int width = 4000;   ///< columns == loop iterations
  int height = 2000;  ///< pixels per column
  double x_min = -2.0;
  double x_max = 1.25;
  double y_min = -1.25;
  double y_max = 1.25;
  int max_iter = 100;  ///< escape-iteration cap
  /// Scalar by default; every other kernel produces identical escape
  /// counts (same recurrence, per-lane) faster. Auto resolves to the
  /// widest ISA the host offers at workload construction; asking for
  /// avx2/avx512 on a host without it throws lss::ContractError.
  MandelbrotKernel kernel = MandelbrotKernel::Scalar;

  /// The paper's window on the classic domain.
  static MandelbrotParams paper(int width = 4000, int height = 2000);
};

/// Escape count of a single point c = (cx, cy); in [1, max_iter].
int mandelbrot_escape(double cx, double cy, int max_iter);

/// Lane width of the batched kernel.
inline constexpr int kMandelbrotBatch = 8;

/// Escape counts of `count` points sharing cx (one image column)
/// with varying cy — full 8-wide batches run branchless in mask
/// form (escaped lanes latch their count and freeze; the batch exits
/// when all lanes escaped), which compilers auto-vectorize without
/// intrinsics; the tail falls back to the scalar kernel. Each lane
/// performs exactly the scalar recurrence, so counts match
/// mandelbrot_escape() per point.
void mandelbrot_escape_batch(double cx, const double* cy, int count,
                             int max_iter, int* out);

class MandelbrotWorkload final : public Workload {
 public:
  explicit MandelbrotWorkload(MandelbrotParams params);

  std::string name() const override;
  Index size() const override { return params_.width; }
  /// Total escape iterations of column i (precomputed at construction).
  double cost(Index i) const override;
  /// Recomputes column i into the image buffer (real CPU work).
  void execute(Index i) override;

  const MandelbrotParams& params() const { return params_; }

  /// Escape count of pixel (col, row) — recomputed on the fly.
  int pixel(int col, int row) const;

  /// Image buffer (column-major, width*height entries); only columns
  /// that were execute()d are populated, others are zero.
  const std::vector<std::uint16_t>& image() const { return image_; }

  /// Executes every column and writes a binary PGM (Figure 2).
  void render_pgm(std::ostream& os);

 private:
  double col_x(int col) const;
  double row_y(int row) const;
  /// Escape counts of every pixel of column c (selected kernel).
  void column_counts(int c, int* out) const;

  MandelbrotParams params_;  ///< kernel resolved (never Auto) here
  /// Non-null for the batch kernels: the implementation the resolved
  /// kernel dispatched to, picked once at construction.
  simd::MandelbrotBatchFn batch_fn_ = nullptr;
  std::vector<double> column_cost_;
  std::vector<std::uint16_t> image_;
};

}  // namespace lss
