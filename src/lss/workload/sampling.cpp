#include "lss/workload/sampling.hpp"

#include <utility>

#include "lss/support/assert.hpp"

namespace lss {

std::vector<Index> sampling_permutation(Index n, Index sampling_frequency) {
  LSS_REQUIRE(n >= 0, "size must be non-negative");
  LSS_REQUIRE(sampling_frequency >= 1, "S_f must be at least 1");
  std::vector<Index> perm;
  perm.reserve(static_cast<std::size_t>(n));
  for (Index phase = 0; phase < sampling_frequency; ++phase)
    for (Index i = phase; i < n; i += sampling_frequency)
      perm.push_back(i);
  return perm;
}

std::vector<Index> inverse_permutation(std::span<const Index> perm) {
  const Index n = static_cast<Index>(perm.size());
  std::vector<Index> inv(perm.size(), Index{-1});
  for (Index k = 0; k < n; ++k) {
    const Index p = perm[static_cast<std::size_t>(k)];
    LSS_REQUIRE(p >= 0 && p < n, "not a permutation: index out of range");
    LSS_REQUIRE(inv[static_cast<std::size_t>(p)] == -1,
                "not a permutation: duplicate index");
    inv[static_cast<std::size_t>(p)] = k;
  }
  return inv;
}

std::shared_ptr<PermutedWorkload> sampled(
    std::shared_ptr<const Workload> base, Index sampling_frequency) {
  LSS_REQUIRE(base != nullptr, "null base workload");
  auto perm = sampling_permutation(base->size(), sampling_frequency);
  return std::make_shared<PermutedWorkload>(std::move(base), std::move(perm));
}

}  // namespace lss
