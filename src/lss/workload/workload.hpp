// Parallel-loop workload abstraction.
//
// A Workload is a loop of `size()` independent iterations (tasks).
// Schedulers only see indices; the simulator uses `cost(i)` (abstract
// "basic operations", the paper's unit in Figure 1) to advance time,
// and the real threaded runtime calls `execute(i)` to burn actual CPU.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lss/support/types.hpp"

namespace lss {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  /// Number of iterations I.
  virtual Index size() const = 0;
  /// Basic-operation count of iteration i in [0, size()).
  virtual double cost(Index i) const = 0;
  /// Perform iteration i for real (used by lss::rt). The default
  /// implementation spins proportionally to cost(i).
  virtual void execute(Index i);
};

/// Sum of cost(i) over the whole loop.
double total_cost(const Workload& w);

/// cost(i) for every i, in order — the loop's "distribution" as in
/// the paper's Figure 1.
std::vector<double> cost_profile(const Workload& w);

/// View of a workload through an index permutation: iteration k of the
/// view is iteration perm[k] of the base. Used for sampled reordering.
class PermutedWorkload final : public Workload {
 public:
  PermutedWorkload(std::shared_ptr<const Workload> base,
                   std::vector<Index> perm);

  std::string name() const override;
  Index size() const override { return static_cast<Index>(perm_.size()); }
  double cost(Index i) const override;
  void execute(Index i) override;

  const std::vector<Index>& permutation() const { return perm_; }

 private:
  std::shared_ptr<const Workload> base_;
  std::vector<Index> perm_;
};

}  // namespace lss
