// Synthetic parallel-loop styles from §2.1 of the paper: uniform,
// linearly increasing/decreasing, conditional, plus irregular
// (random) and peaked profiles for stress-testing schedulers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lss/workload/workload.hpp"

namespace lss {

/// DOALL K=1..I with identical bodies: cost(i) = body_cost.
class UniformWorkload final : public Workload {
 public:
  UniformWorkload(Index iterations, double body_cost);
  std::string name() const override { return "uniform"; }
  Index size() const override { return iterations_; }
  double cost(Index i) const override;

 private:
  Index iterations_;
  double body_cost_;
};

/// Increasing triangular loop: iteration i runs an inner serial loop of
/// i+1 bodies, so cost(i) = (i+1) * body_cost.
class LinearIncreasingWorkload final : public Workload {
 public:
  LinearIncreasingWorkload(Index iterations, double body_cost);
  std::string name() const override { return "linear-increasing"; }
  Index size() const override { return iterations_; }
  double cost(Index i) const override;

 private:
  Index iterations_;
  double body_cost_;
};

/// Decreasing triangular loop: cost(i) = (I - i) * body_cost.
class LinearDecreasingWorkload final : public Workload {
 public:
  LinearDecreasingWorkload(Index iterations, double body_cost);
  std::string name() const override { return "linear-decreasing"; }
  Index size() const override { return iterations_; }
  double cost(Index i) const override;

 private:
  Index iterations_;
  double body_cost_;
};

/// IF(cond) Block1 ELSE Block2: a seeded Bernoulli draw picks the
/// branch per iteration (fixed at construction, deterministic).
class ConditionalWorkload final : public Workload {
 public:
  ConditionalWorkload(Index iterations, double then_cost, double else_cost,
                      double then_probability, std::uint64_t seed);
  std::string name() const override { return "conditional"; }
  Index size() const override;
  double cost(Index i) const override;

 private:
  std::vector<double> cost_;
};

/// Unpredictable irregular loop: log-normal iteration costs
/// exp(mu + sigma * N(0,1)), clamped below at 1.
class IrregularWorkload final : public Workload {
 public:
  IrregularWorkload(Index iterations, double mu, double sigma,
                    std::uint64_t seed);
  std::string name() const override { return "irregular"; }
  Index size() const override;
  double cost(Index i) const override;

 private:
  std::vector<double> cost_;
};

/// Smooth Mandelbrot-like hump: base + amplitude * exp(-((i-c)/w)^2).
class PeakedWorkload final : public Workload {
 public:
  PeakedWorkload(Index iterations, double base, double amplitude,
                 double center_fraction, double width_fraction);
  std::string name() const override { return "peaked"; }
  Index size() const override { return iterations_; }
  double cost(Index i) const override;

 private:
  Index iterations_;
  double base_;
  double amplitude_;
  double center_;
  double width_;
};

}  // namespace lss
