#include "lss/workload/linalg.hpp"

#include <cmath>

#include "lss/support/assert.hpp"
#include "lss/support/prng.hpp"

namespace lss {

SparseMatVecWorkload::SparseMatVecWorkload(Index rows, double mean_nnz,
                                           double skew, std::uint64_t seed) {
  LSS_REQUIRE(rows >= 0, "row count must be non-negative");
  LSS_REQUIRE(mean_nnz >= 1.0, "mean nnz must be at least 1");
  LSS_REQUIRE(skew > 0.0, "skew must be positive");
  Xoshiro256 rng(seed);
  nnz_.reserve(static_cast<std::size_t>(rows));
  for (Index i = 0; i < rows; ++i) {
    // Pareto-flavoured draw: nnz = mean * U^(-1/skew) normalized so
    // the mean is roughly mean_nnz, truncated to keep rows sane.
    const double u = 1.0 - rng.next_double();  // (0, 1]
    const double pareto = std::pow(u, -1.0 / skew);
    const double scale = mean_nnz * (skew > 1.0 ? (skew - 1.0) / skew : 0.5);
    Index n = static_cast<Index>(scale * pareto);
    if (n < 1) n = 1;
    const Index cap = static_cast<Index>(mean_nnz * 100.0);
    if (n > cap) n = cap;
    nnz_.push_back(n);
    total_ += n;
  }
}

Index SparseMatVecWorkload::size() const {
  return static_cast<Index>(nnz_.size());
}

double SparseMatVecWorkload::cost(Index i) const {
  LSS_REQUIRE(i >= 0 && i < size(), "row index out of range");
  return static_cast<double>(nnz_[static_cast<std::size_t>(i)]);
}

Index SparseMatVecWorkload::nnz(Index row) const {
  LSS_REQUIRE(row >= 0 && row < size(), "row index out of range");
  return nnz_[static_cast<std::size_t>(row)];
}

Index SparseMatVecWorkload::total_nnz() const { return total_; }

TriangularWorkload::TriangularWorkload(Index rows, double flop_cost)
    : rows_(rows), flop_cost_(flop_cost) {
  LSS_REQUIRE(rows >= 0, "row count must be non-negative");
  LSS_REQUIRE(flop_cost > 0.0, "flop cost must be positive");
}

double TriangularWorkload::cost(Index i) const {
  LSS_REQUIRE(i >= 0 && i < rows_, "row index out of range");
  return static_cast<double>(i + 1) * flop_cost_;
}

}  // namespace lss
