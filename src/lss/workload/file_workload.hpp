// Trace-driven workload: per-iteration costs loaded from a text file
// (one number per line, '#' comments) — so users can replay profiled
// loops from real applications through the schedulers and simulator.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "lss/workload/workload.hpp"

namespace lss {

class FileWorkload final : public Workload {
 public:
  /// Costs given directly (also the deserialization target).
  explicit FileWorkload(std::vector<double> costs,
                        std::string name = "trace");

  static FileWorkload from_stream(std::istream& in,
                                  std::string name = "trace");
  static FileWorkload from_string(std::string_view text,
                                  std::string name = "trace");
  static FileWorkload from_file(const std::string& path);

  std::string name() const override { return name_; }
  Index size() const override { return static_cast<Index>(costs_.size()); }
  double cost(Index i) const override;

  /// Writes the profile in the same format (round-trips).
  void save(std::ostream& os) const;

 private:
  std::vector<double> costs_;
  std::string name_;
};

}  // namespace lss
