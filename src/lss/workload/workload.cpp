#include "lss/workload/workload.hpp"

#include <utility>

namespace lss {

namespace {
// Sink defeating dead-code elimination of the default spin loop.
// thread_local: execute() runs concurrently on runtime worker
// threads, and a shared sink would be a (benign but TSan-reported)
// data race.
thread_local volatile double g_burn_sink = 0.0;
}  // namespace

void Workload::execute(Index i) {
  const double ops = cost(i);
  double acc = 0.0;
  for (double k = 0.0; k < ops; k += 1.0) acc += k * 1e-9;
  g_burn_sink = acc;
}

double total_cost(const Workload& w) {
  double sum = 0.0;
  for (Index i = 0; i < w.size(); ++i) sum += w.cost(i);
  return sum;
}

std::vector<double> cost_profile(const Workload& w) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(w.size()));
  for (Index i = 0; i < w.size(); ++i) out.push_back(w.cost(i));
  return out;
}

PermutedWorkload::PermutedWorkload(std::shared_ptr<const Workload> base,
                                   std::vector<Index> perm)
    : base_(std::move(base)), perm_(std::move(perm)) {
  LSS_REQUIRE(base_ != nullptr, "null base workload");
  LSS_REQUIRE(static_cast<Index>(perm_.size()) == base_->size(),
              "permutation size must match workload size");
  for (Index p : perm_)
    LSS_REQUIRE(p >= 0 && p < base_->size(), "permutation index out of range");
}

std::string PermutedWorkload::name() const {
  return base_->name() + "+permuted";
}

double PermutedWorkload::cost(Index i) const {
  LSS_REQUIRE(i >= 0 && i < size(), "iteration index out of range");
  return base_->cost(perm_[static_cast<std::size_t>(i)]);
}

void PermutedWorkload::execute(Index i) {
  LSS_REQUIRE(i >= 0 && i < size(), "iteration index out of range");
  // `execute` is non-const on the interface; the shared base is held
  // const because permuted views may share it. Mandelbrot's execute
  // only recomputes pure per-column values, so a const_cast would be
  // safe, but we keep the API honest and re-derive work from cost.
  Workload::execute(i);
}

}  // namespace lss
