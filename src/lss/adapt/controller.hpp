// The mid-loop replanner: simulator-in-the-loop scheme migration.
//
// The paper's distributed schemes already replan *parameters* when
// the cluster's available power shifts (step 2c). AdaptController
// goes one level up and replans the *scheme*: when the measured
// per-PE rates drift far enough from their baseline, it snapshots
// the uncovered suffix, replays it through sim::replay once per
// candidate scheme, and — if some candidate beats staying the course
// by at least `min_gain` — tells the host to fence a migration at
// the current chunk boundary.
//
// The controller only decides; the host (rt/reactor's mediated
// master, svc's per-job scheduler, rt/root's lease server) owns the
// fence: it drains the old scheduler to the cut index, rebuilds the
// chosen scheme over [cut, total), and shifts subsequent grants —
// under the same exactly-once accounting as any other grant.
// Scripted migrations (AdaptivePolicy::force) bypass the drift gate
// and the replay entirely: they fire at the first boundary at or
// past their `at`, which is also what makes them replayable by every
// party of a masterless run.
#pragma once

#include <optional>
#include <string>

#include "lss/adapt/progress.hpp"
#include "lss/api/desc.hpp"
#include "lss/support/types.hpp"

namespace lss::adapt {

/// A decision to migrate, addressed to the host holding the
/// scheduler. `cut` is the absolute iteration index of the fence:
/// everything below it stays with the retiring scheme's grants, the
/// new scheme plans [cut, total).
struct Migration {
  std::string to;
  Index cut = 0;
  /// Relative predicted improvement over staying (replay-scored);
  /// 0 for scripted migrations, which fire unconditionally.
  double predicted_gain = 0.0;
  bool scripted = false;
};

class AdaptController {
 public:
  /// `desc.adaptive` is the policy; `total` and `num_pes` describe
  /// the loop being scheduled.
  AdaptController(AdaptivePolicy policy, Index total, int num_pes);

  /// Measured feedback, same stream the distributed schemes consume.
  void note_feedback(int pe, Index iters, double seconds);

  /// Asks whether to migrate now. `assigned` is the absolute number
  /// of iterations granted so far (the candidate cut); `current` is
  /// the spec of the scheme currently dispensing. Must be called at
  /// a chunk boundary — the fence the decision assumes. Returns at
  /// most one migration per call.
  std::optional<Migration> consider(Index assigned,
                                    const std::string& current);

  int migrations() const { return migrations_; }
  /// Replay-scored considerations (drift gate passed), whether or
  /// not a migration resulted — the obs "adapt.considered" metric.
  int considered() const { return considered_; }
  const ProgressTracker& progress() const { return tracker_; }

 private:
  std::optional<Migration> scripted(Index assigned,
                                    const std::string& current);
  double predicted_makespan(const std::string& spec, Index remaining);

  AdaptivePolicy policy_;
  Index total_ = 0;
  ProgressTracker tracker_;
  std::size_t next_force_ = 0;
  Index last_check_ = 0;
  int migrations_ = 0;
  int considered_ = 0;
};

}  // namespace lss::adapt
