#include "lss/adapt/progress.hpp"

#include <cmath>

#include "lss/support/assert.hpp"

namespace lss::adapt {

ProgressTracker::ProgressTracker(int num_pes, int window)
    : pe_(static_cast<std::size_t>(num_pes)), window_(window) {
  LSS_REQUIRE(num_pes >= 1, "need at least one PE");
  LSS_REQUIRE(window >= 1, "window must be at least one report");
}

void ProgressTracker::note(int pe, Index iters, double seconds) {
  LSS_REQUIRE(pe >= 0 && pe < num_pes(), "PE id out of range");
  if (iters <= 0 || seconds <= 0.0) return;
  PerPe& p = pe_[static_cast<std::size_t>(pe)];
  completed_ += iters;
  p.total_iters += iters;
  p.total_seconds += seconds;
  p.window_iters += iters;
  p.window_seconds += seconds;
  if (++p.window_reports < window_) return;
  p.current_rate =
      static_cast<double>(p.window_iters) / p.window_seconds;
  p.has_current = true;
  if (!p.has_baseline) {
    p.baseline_rate = p.current_rate;
    p.has_baseline = true;
  }
  p.window_reports = 0;
  p.window_iters = 0;
  p.window_seconds = 0.0;
}

bool ProgressTracker::has_baseline(int pe) const {
  LSS_REQUIRE(pe >= 0 && pe < num_pes(), "PE id out of range");
  return pe_[static_cast<std::size_t>(pe)].has_baseline;
}

double ProgressTracker::rate(int pe) const {
  LSS_REQUIRE(pe >= 0 && pe < num_pes(), "PE id out of range");
  const PerPe& p = pe_[static_cast<std::size_t>(pe)];
  if (p.has_current) return p.current_rate;
  if (p.total_seconds > 0.0)
    return static_cast<double>(p.total_iters) / p.total_seconds;
  return 0.0;
}

std::vector<double> ProgressTracker::rates() const {
  std::vector<double> out(pe_.size(), 0.0);
  for (int pe = 0; pe < num_pes(); ++pe)
    out[static_cast<std::size_t>(pe)] = rate(pe);
  return out;
}

double ProgressTracker::drift(int pe) const {
  LSS_REQUIRE(pe >= 0 && pe < num_pes(), "PE id out of range");
  const PerPe& p = pe_[static_cast<std::size_t>(pe)];
  if (!p.has_baseline || !p.has_current || p.baseline_rate <= 0.0)
    return 0.0;
  return std::abs(p.current_rate / p.baseline_rate - 1.0);
}

void ProgressTracker::rebaseline() {
  for (PerPe& p : pe_) {
    if (!p.has_current) continue;
    p.baseline_rate = p.current_rate;
    p.has_baseline = true;
  }
}

double ProgressTracker::drifted_fraction(double threshold) const {
  int with_data = 0;
  int drifted = 0;
  for (int pe = 0; pe < num_pes(); ++pe) {
    if (!pe_[static_cast<std::size_t>(pe)].has_baseline) continue;
    ++with_data;
    if (drift(pe) > threshold) ++drifted;
  }
  return with_data == 0
             ? 0.0
             : static_cast<double>(drifted) / static_cast<double>(with_data);
}

}  // namespace lss::adapt
