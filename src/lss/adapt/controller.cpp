#include "lss/adapt/controller.hpp"

#include <algorithm>
#include <utility>

#include "lss/sim/replay.hpp"
#include "lss/support/assert.hpp"

namespace lss::adapt {

AdaptController::AdaptController(AdaptivePolicy policy, Index total,
                                 int num_pes)
    : policy_(std::move(policy)), total_(total), tracker_(num_pes) {
  LSS_REQUIRE(total >= 0, "iteration count must be non-negative");
}

void AdaptController::note_feedback(int pe, Index iters, double seconds) {
  tracker_.note(pe, iters, seconds);
}

std::optional<Migration> AdaptController::scripted(
    Index assigned, const std::string& current) {
  // Collapse every cut already passed into the last one — the same
  // rule MasterlessPlan applies, so mediated and masterless runs of
  // one desc fence at identical boundaries.
  std::string to;
  while (next_force_ < policy_.force.size() &&
         policy_.force[next_force_].at <= assigned) {
    to = policy_.force[next_force_].to;
    ++next_force_;
  }
  if (to.empty() || to == current) return std::nullopt;
  ++migrations_;
  return Migration{to, assigned, 0.0, true};
}

double AdaptController::predicted_makespan(const std::string& spec,
                                           Index remaining) {
  sim::ReplaySpec rs;
  rs.scheme = spec;
  rs.iterations = remaining;
  rs.rates = tracker_.rates();
  rs.seed = policy_.replay_seed;
  return sim::replay(rs).makespan_s;
}

std::optional<Migration> AdaptController::consider(
    Index assigned, const std::string& current) {
  if (auto forced = scripted(assigned, current)) return forced;
  if (!policy_.enabled) return std::nullopt;
  if (migrations_ >= policy_.max_migrations) return std::nullopt;
  const Index remaining = total_ - assigned;
  if (remaining <= 0) return std::nullopt;

  // Cadence: don't re-evaluate until check_every more iterations
  // were granted (auto: a sixteenth of the loop).
  const Index cadence = policy_.check_every > 0
                            ? policy_.check_every
                            : std::max<Index>(total_ / 16, 1);
  if (assigned - last_check_ < cadence) return std::nullopt;
  last_check_ = assigned;

  // Drift gate: enough PEs moved away from the rates the current
  // scheme was planned for (the measured analogue of the paper's
  // majority-change rule).
  const double drifted =
      tracker_.drifted_fraction(policy_.drift_threshold);
  if (drifted < policy_.drift_fraction || drifted <= 0.0)
    return std::nullopt;

  // Replay the suffix under every candidate; require min_gain over
  // staying before paying for a migration (hysteresis).
  double rate_sum = 0.0;
  for (double r : tracker_.rates()) rate_sum += std::max(r, 0.0);
  if (rate_sum <= 0.0) return std::nullopt;
  ++considered_;
  const double stay = predicted_makespan(current, remaining);
  std::string best = current;
  double best_time = stay;
  const std::vector<std::string>& candidates =
      policy_.candidates.empty() ? default_adaptive_candidates()
                                 : policy_.candidates;
  for (const std::string& c : candidates) {
    if (c == current) continue;
    const double t = predicted_makespan(c, remaining);
    if (t < best_time) {
      best = c;
      best_time = t;
    }
  }
  if (best == current) return std::nullopt;
  if (stay <= 0.0 || best_time > (1.0 - policy_.min_gain) * stay)
    return std::nullopt;

  ++migrations_;
  tracker_.rebaseline();
  return Migration{best, assigned, 1.0 - best_time / stay, false};
}

}  // namespace lss::adapt
