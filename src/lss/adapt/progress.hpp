// Live progress accounting for the adaptive replanner.
//
// The mediated master (rt/reactor) and the service (svc) already
// receive measured feedback with every worker request: "I finished
// `iters` iterations in `seconds`". ProgressTracker folds that
// stream into the two things a migration decision needs:
//
//   * the *current* per-PE delivery rate (a window over the most
//     recent feedback, so a freshly loaded node shows up within one
//     window, not averaged away by its whole history), and
//   * how far each PE has drifted from the baseline rate captured
//     when its first window filled — the paper's "available
//     computing power changed" signal, measured instead of declared.
//
// The tracker is passive arithmetic; deciding what to do about drift
// belongs to AdaptController.
#pragma once

#include <vector>

#include "lss/support/types.hpp"

namespace lss::adapt {

using lss::Index;

class ProgressTracker {
 public:
  /// `window` = feedback reports folded into one rate sample (>= 1).
  explicit ProgressTracker(int num_pes, int window = 4);

  /// One feedback report from `pe`: `iters` iterations took
  /// `seconds`. Reports with no work or no time are ignored.
  void note(int pe, Index iters, double seconds);

  int num_pes() const { return static_cast<int>(pe_.size()); }

  /// True once `pe` has both a baseline and a complete current
  /// window — before that, drift(pe) is 0 by definition.
  bool has_baseline(int pe) const;

  /// Current delivery rate (iters/sec) of `pe`: the latest complete
  /// window, the partial window if none completed yet, 0 with no
  /// data at all.
  double rate(int pe) const;

  /// All current rates, indexed by PE — the ReplaySpec::rates input.
  std::vector<double> rates() const;

  /// Relative drift |current/baseline - 1| of `pe`; 0 until a
  /// baseline exists.
  double drift(int pe) const;

  /// Fraction of PEs (with any data) whose drift exceeds
  /// `threshold` — compared against AdaptivePolicy::drift_fraction,
  /// the measured analogue of the paper's majority-change rule.
  double drifted_fraction(double threshold) const;

  /// Total iterations acknowledged across all PEs.
  Index completed() const { return completed_; }

  /// Adopts every PE's current rate as its new baseline — called
  /// after a migration so the drift detector measures against the
  /// world the new scheme was chosen for, not the original one.
  void rebaseline();

 private:
  struct PerPe {
    // Lifetime totals (the fallback rate before a window completes).
    Index total_iters = 0;
    double total_seconds = 0.0;
    // Current accumulating window.
    int window_reports = 0;
    Index window_iters = 0;
    double window_seconds = 0.0;
    // Latest completed window, and the first one (the baseline).
    double current_rate = 0.0;
    double baseline_rate = 0.0;
    bool has_current = false;
    bool has_baseline = false;
  };

  std::vector<PerPe> pe_;
  int window_ = 4;
  Index completed_ = 0;
};

}  // namespace lss::adapt
