#include "lss/svc/protocol.hpp"

#include "lss/mp/message.hpp"
#include "lss/support/assert.hpp"

namespace lss::svc {

std::string to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Active: return "active";
    case JobState::Done: return "done";
    case JobState::Rejected: return "rejected";
    case JobState::Canceled: return "canceled";
    case JobState::Failed: return "failed";
  }
  return "unknown";
}

std::string to_string(SubmitError error) {
  switch (error) {
    case SubmitError::None: return "none";
    case SubmitError::BadSpec: return "bad_spec";
    case SubmitError::QueueFull: return "queue_full";
    case SubmitError::ProtocolTooOld: return "protocol_too_old";
  }
  return "unknown";
}

std::vector<std::byte> encode_status(const JobStatusMsg& msg) {
  mp::PayloadWriter w;
  w.put_i64(msg.job_id);
  w.put_i32(static_cast<std::int32_t>(msg.state));
  w.put_i32(static_cast<std::int32_t>(msg.error));
  w.put_string(msg.message);
  w.put_i32(msg.queue_position);
  w.put_i64(msg.completed);
  w.put_i64(msg.total);
  return w.take();
}

JobStatusMsg decode_status(std::span<const std::byte> payload) {
  mp::PayloadReader rd(payload);
  JobStatusMsg msg;
  msg.job_id = rd.get_i64();
  msg.state = static_cast<JobState>(rd.get_i32());
  msg.error = static_cast<SubmitError>(rd.get_i32());
  msg.message = rd.get_string();
  msg.queue_position = rd.get_i32();
  msg.completed = rd.get_i64();
  msg.total = rd.get_i64();
  return msg;
}

std::vector<std::byte> encode_result(const JobResultMsg& msg) {
  mp::PayloadWriter w;
  w.put_i64(msg.job_id);
  w.put_i32(static_cast<std::int32_t>(msg.state));
  w.put_string(msg.scheme);
  w.put_i64(msg.masterless ? 1 : 0);
  w.put_i64(msg.iterations);
  w.put_i64(msg.chunks);
  w.put_f64(msg.t_queued);
  w.put_f64(msg.t_active);
  w.put_i32(msg.workers_lost);
  w.put_i64(msg.reassigned_chunks);
  w.put_i64(msg.exactly_once ? 1 : 0);
  w.put_i64(static_cast<std::int64_t>(msg.executed.size()));
  for (const Range& r : msg.executed) w.put_range(r);
  w.put_string(msg.stats_json);
  return w.take();
}

JobResultMsg decode_result(std::span<const std::byte> payload) {
  mp::PayloadReader rd(payload);
  JobResultMsg msg;
  msg.job_id = rd.get_i64();
  msg.state = static_cast<JobState>(rd.get_i32());
  msg.scheme = rd.get_string();
  msg.masterless = rd.get_i64() != 0;
  msg.iterations = rd.get_i64();
  msg.chunks = rd.get_i64();
  msg.t_queued = rd.get_f64();
  msg.t_active = rd.get_f64();
  msg.workers_lost = rd.get_i32();
  msg.reassigned_chunks = rd.get_i64();
  msg.exactly_once = rd.get_i64() != 0;
  const std::int64_t n = rd.get_count(sizeof(lss::Range));
  msg.executed.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) msg.executed.push_back(rd.get_range());
  msg.stats_json = rd.get_string();
  return msg;
}

std::vector<std::byte> encode_wk_grant(const WkGrant& grant) {
  mp::PayloadWriter w;
  w.put_i64(grant.job_id);
  w.put_range(grant.chunk);
  return w.take();
}

WkGrant decode_wk_grant(std::span<const std::byte> payload) {
  mp::PayloadReader rd(payload);
  WkGrant grant;
  grant.job_id = rd.get_i64();
  grant.chunk = rd.get_range();
  return grant;
}

std::vector<std::byte> encode_wk_done(const WkDone& done) {
  mp::PayloadWriter w;
  w.put_i64(done.job_id);
  w.put_range(done.chunk);
  w.put_f64(done.fb_seconds);
  w.put_i64(done.drained ? 1 : 0);
  return w.take();
}

WkDone decode_wk_done(std::span<const std::byte> payload) {
  mp::PayloadReader rd(payload);
  WkDone done;
  done.job_id = rd.get_i64();
  done.chunk = rd.get_range();
  done.fb_seconds = rd.get_f64();
  done.drained = rd.get_i64() != 0;
  return done;
}

std::vector<std::byte> encode_wk_job(std::int64_t job_id) {
  mp::PayloadWriter w;
  w.put_i64(job_id);
  return w.take();
}

std::int64_t decode_wk_job(std::span<const std::byte> payload) {
  mp::PayloadReader rd(payload);
  return rd.get_i64();
}

}  // namespace lss::svc
