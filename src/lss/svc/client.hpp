// Tenant-side convenience over the job protocol (svc/protocol): one
// object per tenant rank that frames submits, status queries, and the
// blocking result wait. Purely a codec + matching layer — it owns no
// socket; hand it whichever mp::Transport the tenant speaks (the
// in-process Comm in tests, a TcpWorkerTransport in lss_submit).
//
// Results of *other* jobs arriving while await_result(id) waits are
// stashed and handed back when their id is asked for, so a tenant may
// submit N jobs and then await them in any order.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "lss/mp/transport.hpp"
#include "lss/rt/job.hpp"
#include "lss/svc/protocol.hpp"

namespace lss::svc {

class Client {
 public:
  /// `rank` is this tenant's rank on `transport` (the service is
  /// rank 0). The transport must outlive the client.
  Client(mp::Transport& transport, int rank);

  /// Submits a job; blocks for the admission verdict. `msg.ok()`
  /// false means rejected — `msg.error` says why, `msg.message` how.
  JobStatusMsg submit(const rt::JobSpec& spec);
  /// Same, from raw JSON text (a --job-file document).
  JobStatusMsg submit_json(const std::string& json);

  /// Queries the service for a job's state; blocks for the reply.
  JobStatusMsg status(std::int64_t job_id);

  /// Blocks until the terminal report of `job_id` arrives. Results
  /// of other jobs that arrive first are stashed for later calls.
  JobResultMsg await_result(std::int64_t job_id);

  /// Detaches from the service: queued jobs are canceled, and the
  /// daemon may exit once every tenant has said bye.
  void bye();

 private:
  mp::Transport& t_;
  const int rank_;
  std::map<std::int64_t, JobResultMsg> stashed_;
};

}  // namespace lss::svc
