// The tenant-facing job protocol of the resident loop service
// (DESIGN.md §15): tag vocabulary and payload codecs spoken between
// an lss_serve daemon (rank 0 of a tenant-facing mp::Transport) and
// its tenant clients (ranks 1..T). Transport-independent, like
// rt/protocol — the same frames flow through the in-process Comm the
// tests use and the TCP endpoints lss_submit dials.
//
//   tenant -> service  JobSubmit  one JobSpec as JSON text (the same
//                                 document `--job-file` takes); the
//                                 service always answers with a
//                                 JobStatus — the admission verdict
//   tenant -> service  JobStatus  query for a job id
//   service -> tenant  JobStatus  state + queue position + progress,
//                                 or the typed rejection
//   service -> tenant  JobResult  terminal report: chunk sequence,
//                                 exactly-once verdict, RunStats JSON
//   tenant -> service  SvcBye     the tenant detaches; its queued
//                                 jobs are canceled, running jobs
//                                 finish (results are dropped)
//
// All five tags ride behind the negotiated kProtoService generation
// (mp/transport.hpp): the service rejects submits from peers that
// negotiated anything older with SubmitError::ProtocolTooOld rather
// than silently misparsing frames a pre-service peer meant for the
// worker protocol. Tag numbers continue rt/protocol's space (1-12)
// so a misrouted frame is unambiguous in traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lss/support/types.hpp"

namespace lss::svc {

inline constexpr int kTagJobSubmit = 13;
inline constexpr int kTagJobStatus = 14;
inline constexpr int kTagJobResult = 15;
inline constexpr int kTagSvcBye = 16;

// Internal pool vocabulary (service <-> its worker threads, in-proc
// Comm only — never crosses a socket). Numbered apart from the
// tenant tags so a frame misrouted between the two transports is
// unambiguous.
inline constexpr int kTagWkOpen = 20;   ///< svc->wk: job id joined the pool
inline constexpr int kTagWkGrant = 21;  ///< svc->wk: job id + chunk
inline constexpr int kTagWkDone = 22;   ///< wk->svc: completion / drained
inline constexpr int kTagWkClose = 23;  ///< svc->wk: job id left the pool
inline constexpr int kTagWkExit = 24;   ///< svc->wk: the pool is closing

/// Job lifecycle (DESIGN.md §15). Queued and Active are the live
/// states; everything else is terminal.
enum class JobState : std::int32_t {
  Queued = 0,    ///< admitted, waiting for an active slot
  Active = 1,    ///< scheduler instantiated, grants in flight
  Done = 2,      ///< covered exactly once, result delivered
  Rejected = 3,  ///< never admitted (see SubmitError)
  Canceled = 4,  ///< tenant detached while the job was still queued
  Failed = 5,    ///< unrecoverable mid-run loss (e.g. whole pool died)
};

std::string to_string(JobState state);

/// Typed admission verdicts — the backpressure contract. A tenant
/// seeing QueueFull backs off and resubmits; BadSpec is permanent.
enum class SubmitError : std::int32_t {
  None = 0,
  BadSpec = 1,          ///< JSON/validate/make_* failed; message says why
  QueueFull = 2,        ///< submit queue at max_queued — try again later
  ProtocolTooOld = 3,   ///< peer negotiated < kProtoService
};

std::string to_string(SubmitError error);

/// kTagJobStatus payload, both directions. As a query only `job_id`
/// is meaningful; as a reply the rest is filled in. Also the
/// submit acknowledgement (job_id < 0 on rejection without a job).
struct JobStatusMsg {
  std::int64_t job_id = -1;
  JobState state = JobState::Queued;
  SubmitError error = SubmitError::None;
  std::string message;          ///< human-readable rejection reason
  std::int32_t queue_position = -1;  ///< 0-based; -1 when not queued
  Index completed = 0;          ///< iterations acknowledged so far
  Index total = 0;              ///< loop size (0 until admitted)

  bool ok() const { return error == SubmitError::None; }
};

std::vector<std::byte> encode_status(const JobStatusMsg& msg);
JobStatusMsg decode_status(std::span<const std::byte> payload);

/// kTagJobResult payload: the terminal report of one job.
struct JobResultMsg {
  std::int64_t job_id = -1;
  JobState state = JobState::Done;
  std::string scheme;        ///< resolved scheme name
  bool masterless = false;   ///< dispatch mode that actually ran
  Index iterations = 0;      ///< acknowledged loop iterations
  Index chunks = 0;          ///< grants acknowledged
  double t_queued = 0.0;     ///< seconds from submit to activation
  double t_active = 0.0;     ///< seconds from activation to the result
  int workers_lost = 0;      ///< pool workers lost while job was active
  Index reassigned_chunks = 0;
  bool exactly_once = true;  ///< every iteration acknowledged once
  /// Every chunk acknowledged, in ack order — the multiset the
  /// conformance oracle (tests/chunk_oracle.hpp) compares against
  /// the scheme's golden grant table.
  std::vector<Range> executed;
  std::string stats_json;    ///< RunStats::to_json() of this job
};

std::vector<std::byte> encode_result(const JobResultMsg& msg);
JobResultMsg decode_result(std::span<const std::byte> payload);

/// kTagWkGrant payload (internal pool protocol).
struct WkGrant {
  std::int64_t job_id = -1;
  Range chunk{};
};

std::vector<std::byte> encode_wk_grant(const WkGrant& grant);
WkGrant decode_wk_grant(std::span<const std::byte> payload);

/// kTagWkDone payload (internal pool protocol). An empty chunk with
/// `drained` set announces "my masterless claims for this job ran
/// past the plan" — the worker computes nothing more for it unless
/// the service re-grants reclaimed work over kTagWkGrant.
struct WkDone {
  std::int64_t job_id = -1;
  Range chunk{};
  double fb_seconds = 0.0;  ///< measured wall seconds for the chunk
  bool drained = false;
};

std::vector<std::byte> encode_wk_done(const WkDone& done);
WkDone decode_wk_done(std::span<const std::byte> payload);

/// kTagWkOpen / kTagWkClose payload: the bare job id.
std::vector<std::byte> encode_wk_job(std::int64_t job_id);
std::int64_t decode_wk_job(std::span<const std::byte> payload);

}  // namespace lss::svc
