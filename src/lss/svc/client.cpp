#include "lss/svc/client.hpp"

#include <utility>

#include "lss/mp/message.hpp"

namespace lss::svc {

Client::Client(mp::Transport& transport, int rank)
    : t_(transport), rank_(rank) {}

JobStatusMsg Client::submit(const rt::JobSpec& spec) {
  return submit_json(spec.to_json());
}

JobStatusMsg Client::submit_json(const std::string& json) {
  mp::PayloadWriter w;
  w.put_string(json);
  t_.send(rank_, 0, kTagJobSubmit, w.take());
  // The admission verdict is always the next status frame: the
  // service replies to every submit before processing another frame
  // from the same tenant (frames from one rank stay ordered).
  return decode_status(t_.recv(rank_, 0, kTagJobStatus).payload);
}

JobStatusMsg Client::status(std::int64_t job_id) {
  JobStatusMsg query;
  query.job_id = job_id;
  t_.send(rank_, 0, kTagJobStatus, encode_status(query));
  return decode_status(t_.recv(rank_, 0, kTagJobStatus).payload);
}

JobResultMsg Client::await_result(std::int64_t job_id) {
  const auto it = stashed_.find(job_id);
  if (it != stashed_.end()) {
    JobResultMsg msg = std::move(it->second);
    stashed_.erase(it);
    return msg;
  }
  for (;;) {
    JobResultMsg msg =
        decode_result(t_.recv(rank_, 0, kTagJobResult).payload);
    if (msg.job_id == job_id) return msg;
    stashed_.emplace(msg.job_id, std::move(msg));
  }
}

void Client::bye() { t_.send(rank_, 0, kTagSvcBye, {}); }

}  // namespace lss::svc
