#include "lss/svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "lss/adapt/controller.hpp"
#include "lss/api/scheduler.hpp"
#include "lss/cluster/acp.hpp"
#include "lss/mp/comm.hpp"
#include "lss/obs/metrics_registry.hpp"
#include "lss/rt/affinity.hpp"
#include "lss/rt/counter.hpp"
#include "lss/rt/dispatch.hpp"
#include "lss/rt/throttle.hpp"
#include "lss/support/assert.hpp"
#include "lss/support/json.hpp"
#include "lss/svc/protocol.hpp"
#include "lss/workload/spec.hpp"

namespace lss::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ----------------------------------------------------------- job directory

/// What a pool worker needs locally to serve a job. Frames cannot
/// carry pointers, so the service publishes views here (under a
/// mutex) and kTagWkOpen ships only the job id.
struct WorkerJobView {
  std::shared_ptr<Workload> workload;
  /// Masterless jobs only: the shared plan + ticket counter the
  /// worker claims from (DESIGN.md §14). Null for mediated jobs.
  std::shared_ptr<const rt::MasterlessPlan> plan;
  std::shared_ptr<rt::TicketCounter> counter;
};

class JobDirectory {
 public:
  void put(std::int64_t id, WorkerJobView view) {
    std::lock_guard<std::mutex> lock(mu_);
    views_[id] = std::make_shared<const WorkerJobView>(std::move(view));
  }
  std::shared_ptr<const WorkerJobView> get(std::int64_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = views_.find(id);
    return it == views_.end() ? nullptr : it->second;
  }
  void erase(std::int64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    views_.erase(id);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::int64_t, std::shared_ptr<const WorkerJobView>> views_;
};

// ------------------------------------------------------------- pool worker

struct PoolWorkerConfig {
  int rank = 1;  ///< this worker's rank on the pool comm
  double relative_speed = 1.0;
  /// Silent exit before computing the (die_after+1)-th chunk
  /// (counted across all jobs); negative = never.
  int die_after_chunks = -1;
  double poll_seconds = 0.002;
  const JobDirectory* directory = nullptr;
};

/// The resident worker loop: executes granted chunks FIFO, and while
/// its grant queue is empty claims tickets for any open masterless
/// job. One Done frame per computed chunk — grants of different jobs
/// interleave back to back on the same thread.
void run_pool_worker(mp::Comm& comm, const PoolWorkerConfig& cfg) {
  rt::Throttle throttle(cfg.relative_speed);
  std::deque<WkGrant> queue;
  std::map<std::int64_t, std::shared_ptr<const WorkerJobView>> open;
  std::vector<std::int64_t> claiming;  // masterless jobs, open order
  int computed = 0;
  bool exiting = false;

  const auto drop_job = [&](std::int64_t id) {
    open.erase(id);
    claiming.erase(std::remove(claiming.begin(), claiming.end(), id),
                   claiming.end());
    queue.erase(std::remove_if(queue.begin(), queue.end(),
                               [id](const WkGrant& g) {
                                 return g.job_id == id;
                               }),
                queue.end());
  };

  const auto ingest = [&](mp::Message&& m) {
    switch (m.tag) {
      case kTagWkOpen: {
        const std::int64_t id = decode_wk_job(m.payload);
        if (auto view = cfg.directory->get(id)) {
          open[id] = view;
          if (view->plan) claiming.push_back(id);
        }
        break;
      }
      case kTagWkGrant:
        queue.push_back(decode_wk_grant(m.payload));
        break;
      case kTagWkClose:
        drop_job(decode_wk_job(m.payload));
        break;
      case kTagWkExit:
        exiting = true;
        break;
      default:
        break;
    }
  };

  // Returns false when the injected fault fires: the worker abandons
  // everything it holds and exits without a word, exactly the
  // rt/worker footprint (die *before* computing, no ack).
  const auto execute = [&](std::int64_t job, Range chunk,
                           const WorkerJobView& view,
                           bool drained_after) -> bool {
    if (cfg.die_after_chunks >= 0 && computed >= cfg.die_after_chunks)
      return false;
    const auto t0 = Clock::now();
    for (Index i = chunk.begin; i < chunk.end; ++i)
      view.workload->execute(i);
    throttle.pay(std::chrono::duration<double>(seconds_since(t0)));
    ++computed;
    WkDone done;
    done.job_id = job;
    done.chunk = chunk;
    done.fb_seconds = seconds_since(t0);
    done.drained = drained_after;
    comm.send(cfg.rank, 0, kTagWkDone, encode_wk_done(done));
    return true;
  };

  while (!exiting) {
    for (mp::Message& m : comm.drain(cfg.rank)) ingest(std::move(m));
    if (exiting) break;

    if (!queue.empty()) {
      const WkGrant g = queue.front();
      queue.pop_front();
      const auto it = open.find(g.job_id);
      if (it == open.end()) continue;  // job already closed
      if (!execute(g.job_id, g.chunk, *it->second, false)) return;
      continue;
    }

    if (!claiming.empty()) {
      const std::int64_t job = claiming.front();
      const auto it = open.find(job);
      if (it == open.end()) {
        claiming.erase(claiming.begin());
        continue;
      }
      const WorkerJobView& view = *it->second;
      const auto ticket = view.counter->fetch_add(1);
      if (!ticket || *ticket >= view.plan->tickets()) {
        // Counter dead or plan drained: this worker is done claiming
        // for the job. Announce it so the service can reconcile
        // unacknowledged tickets once every live claimant agrees.
        WkDone done;
        done.job_id = job;
        done.drained = true;
        comm.send(cfg.rank, 0, kTagWkDone, encode_wk_done(done));
        claiming.erase(claiming.begin());
        continue;
      }
      const Range chunk = view.plan->chunk(*ticket);
      if (!execute(job, chunk, view, false)) return;
      continue;
    }

    if (auto m = comm.recv_for(
            cfg.rank, std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(cfg.poll_seconds))))
      ingest(std::move(*m));
  }
}

// ------------------------------------------------------------ job bookkeeping

struct GrantRecord {
  std::int64_t job = -1;
  Range chunk{};
  int slot = -1;  ///< scheduler slot that produced it; -1 = reclaim pool
  Clock::time_point granted_at{};
};

struct Job {
  std::int64_t id = -1;
  int tenant = -1;  ///< tenant rank on the tenant transport
  rt::JobSpec spec;
  std::shared_ptr<Workload> workload;
  Index total = 0;
  int pes = 0;
  JobState state = JobState::Queued;
  Clock::time_point submitted_at{};
  Clock::time_point activated_at{};
  double t_queued = 0.0;
  double t_active = 0.0;

  // Active-state machinery (mediated path).
  std::unique_ptr<Scheduler> scheduler;  // null for masterless jobs
  std::vector<double> acps;              // distributed schemes only
  std::int64_t slot_cursor = 0;          // strict round-robin next() order

  // Adaptive replanning (mediated simple family, DESIGN.md §16): the
  // scheduler above covers [sched_offset, total) and grants
  // segment-relative ranges the service shifts; scheme_chain records
  // the migration history ("css:k=64->tss").
  std::string sched_spec;
  Index sched_offset = 0;
  std::string scheme_chain;
  std::optional<adapt::AdaptController> controller;

  // Active-state machinery (masterless path).
  bool masterless = false;
  std::shared_ptr<const rt::MasterlessPlan> plan;
  std::shared_ptr<rt::TicketCounter> counter;
  std::vector<bool> acked_ticket;
  std::set<int> opened_by;   ///< pool workers that saw kTagWkOpen
  std::set<int> drained_by;  ///< of those, who announced drained
  bool reconciled = false;

  // Shared accounting.
  std::deque<Range> reclaim;  ///< reclaimed chunks awaiting re-grant
  int outstanding = 0;        ///< mediated grants in flight
  std::vector<int> acked;     ///< per-iteration ack count
  Index covered = 0;          ///< iterations acked at least once
  Index chunks_acked = 0;
  std::vector<Range> executed;  ///< acked chunks, ack order
  int workers_lost = 0;
  Index reassigned_chunks = 0;

  bool terminal() const {
    return state != JobState::Queued && state != JobState::Active;
  }
};

struct TenantState {
  bool detached = false;
  std::int64_t activated = 0;  ///< jobs of this tenant ever activated
};

}  // namespace

// ------------------------------------------------------------------ service

std::string ServiceStats::to_json() const {
  std::string out = "{";
  out += "\"jobs_submitted\":" + std::to_string(jobs_submitted);
  out += ",\"jobs_completed\":" + std::to_string(jobs_completed);
  out += ",\"jobs_rejected\":" + std::to_string(jobs_rejected);
  out += ",\"jobs_canceled\":" + std::to_string(jobs_canceled);
  out += ",\"jobs_failed\":" + std::to_string(jobs_failed);
  out += ",\"workers_lost\":" + std::to_string(workers_lost);
  out += ",\"t_wall\":" + json::format_number(t_wall);
  out += ",\"jobs_per_second\":" + json::format_number(jobs_per_second());
  out += ",\"per_job\":{";
  for (std::size_t i = 0; i < per_job.size(); ++i) {
    if (i) out += ',';
    out += "\"" + std::to_string(per_job[i].first) +
           "\":" + per_job[i].second.to_json();
  }
  out += "}}";
  return out;
}

Service::Service(ServiceConfig config) : config_(std::move(config)) {
  LSS_REQUIRE(config_.num_workers >= 1, "service needs at least one worker");
  LSS_REQUIRE(config_.worker_speeds.empty() ||
                  static_cast<int>(config_.worker_speeds.size()) ==
                      config_.num_workers,
              "need one worker_speeds entry per pool worker (or none)");
  LSS_REQUIRE(config_.die_after_chunks.empty() ||
                  static_cast<int>(config_.die_after_chunks.size()) ==
                      config_.num_workers,
              "need one die_after_chunks entry per pool worker (or none)");
  LSS_REQUIRE(config_.max_queued >= 1, "max_queued must be >= 1");
  LSS_REQUIRE(config_.max_active >= 1, "max_active must be >= 1");
  LSS_REQUIRE(config_.job_window >= 1, "job_window must be >= 1");
}

ServiceStats Service::run(mp::Transport& tenants, int num_tenants) {
  LSS_REQUIRE(num_tenants >= 1, "service needs at least one tenant");
  const auto t_start = Clock::now();
  const int W = config_.num_workers;

  JobDirectory directory;
  mp::Comm pool(W + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(W));
  for (int w = 0; w < W; ++w) {
    PoolWorkerConfig wc;
    wc.rank = w + 1;
    wc.relative_speed =
        config_.worker_speeds.empty() ? 1.0 : config_.worker_speeds[w];
    wc.die_after_chunks =
        config_.die_after_chunks.empty() ? -1 : config_.die_after_chunks[w];
    wc.poll_seconds = config_.poll_seconds;
    wc.directory = &directory;
    const bool pin = config_.pin_threads;
    threads.emplace_back([&pool, pin, w, wc] {
      if (pin) rt::pin_current_thread(rt::pick_pin_cpu(w));
      run_pool_worker(pool, wc);
    });
  }

  ServiceStats stats;
  std::map<std::int64_t, Job> jobs;
  std::vector<std::int64_t> queued;  // submit order
  std::vector<std::int64_t> active;
  std::map<int, TenantState> tenant_state;
  for (int t = 1; t <= num_tenants; ++t) tenant_state[t];
  std::vector<char> alive(static_cast<std::size_t>(W + 1), 1);
  std::vector<Clock::time_point> last_heard(static_cast<std::size_t>(W + 1),
                                            Clock::now());
  std::vector<std::deque<GrantRecord>> grants(
      static_cast<std::size_t>(W + 1));
  std::int64_t next_id = 1;
  auto& metrics = obs::MetricsRegistry::instance();

  const auto live_workers = [&] {
    int n = 0;
    for (int w = 1; w <= W; ++w) n += alive[static_cast<std::size_t>(w)];
    return n;
  };

  const auto queue_position = [&](std::int64_t id) {
    for (std::size_t i = 0; i < queued.size(); ++i)
      if (queued[i] == id) return static_cast<std::int32_t>(i);
    return static_cast<std::int32_t>(-1);
  };

  const auto status_of = [&](std::int64_t id) {
    JobStatusMsg msg;
    msg.job_id = id;
    const auto it = jobs.find(id);
    if (it == jobs.end()) {
      msg.error = SubmitError::BadSpec;
      msg.message = "unknown job id " + std::to_string(id);
      return msg;
    }
    const Job& j = it->second;
    msg.state = j.state;
    msg.queue_position = queue_position(id);
    msg.completed = j.covered;
    msg.total = j.total;
    return msg;
  };

  const auto send_status = [&](int tenant, const JobStatusMsg& msg) {
    tenants.send(0, tenant, kTagJobStatus, encode_status(msg));
  };

  // Terminal transition + result delivery + pool cleanup, one place.
  const auto finish_job = [&](Job& j, JobState state) {
    j.state = state;
    j.t_active = seconds_since(j.activated_at);
    directory.erase(j.id);
    for (int w = 1; w <= W; ++w)
      if (alive[static_cast<std::size_t>(w)])
        pool.send(0, w, kTagWkClose, encode_wk_job(j.id));
    active.erase(std::remove(active.begin(), active.end(), j.id),
                 active.end());

    RunStats rs;
    rs.scheme = !j.scheme_chain.empty()
                    ? j.scheme_chain
                    : (j.plan ? j.plan->name() : j.spec.scheduler.scheme);
    rs.runner = "svc";
    rs.dispatch_path = j.masterless ? "masterless" : "mediated";
    rs.transport = tenants.kind();
    rs.num_pes = j.pes;
    rs.iterations = j.covered;
    rs.chunks = j.chunks_acked;
    rs.t_wall = j.t_active;
    rs.workers_lost = j.workers_lost;
    rs.reassigned_chunks = j.reassigned_chunks;
    stats.per_job.emplace_back(j.id, rs);

    if (state == JobState::Done) {
      ++stats.jobs_completed;
      metrics.counter("svc.jobs.completed").add();
    } else {
      ++stats.jobs_failed;
      metrics.counter("svc.jobs.failed").add();
    }

    if (!tenant_state[j.tenant].detached) {
      JobResultMsg msg;
      msg.job_id = j.id;
      msg.state = state;
      msg.scheme = rs.scheme;
      msg.masterless = j.masterless;
      msg.iterations = j.covered;
      msg.chunks = j.chunks_acked;
      msg.t_queued = j.t_queued;
      msg.t_active = j.t_active;
      msg.workers_lost = j.workers_lost;
      msg.reassigned_chunks = j.reassigned_chunks;
      msg.exactly_once =
          j.covered == j.total &&
          std::all_of(j.acked.begin(), j.acked.end(),
                      [](int c) { return c == 1; });
      msg.executed = j.executed;
      msg.stats_json = rs.to_json();
      tenants.send(0, j.tenant, kTagJobResult, encode_result(msg));
    }
  };

  const auto ack_chunk = [&](Job& j, Range chunk) {
    for (Index i = chunk.begin; i < chunk.end; ++i) {
      const auto s = static_cast<std::size_t>(i);
      if (j.acked[s] == 0) ++j.covered;
      ++j.acked[s];
    }
    ++j.chunks_acked;
    j.executed.push_back(chunk);
    if (j.plan) {
      if (const auto t = j.plan->ticket_of(chunk))
        j.acked_ticket[static_cast<std::size_t>(*t)] = true;
    }
  };

  const auto kill_worker = [&](int w) {
    auto& wq = grants[static_cast<std::size_t>(w)];
    alive[static_cast<std::size_t>(w)] = 0;
    ++stats.workers_lost;
    metrics.counter("svc.workers.lost").add();
    std::set<std::int64_t> affected;
    for (const GrantRecord& g : wq) {
      Job& j = jobs.at(g.job);
      j.reclaim.push_back(g.chunk);
      --j.outstanding;
      ++j.reassigned_chunks;
      affected.insert(g.job);
    }
    wq.clear();
    for (std::int64_t id : active) {
      Job& j = jobs.at(id);
      const bool opened = j.opened_by.count(w) != 0;
      if (opened || affected.count(id)) ++j.workers_lost;
      j.opened_by.erase(w);
      j.drained_by.erase(w);
    }
  };

  // --------------------------------------------------------- frame ingest

  const auto ingest_pool = [&](mp::Message&& m) {
    const int w = m.source;
    if (m.tag != kTagWkDone) return;
    if (!alive[static_cast<std::size_t>(w)]) return;  // fenced
    last_heard[static_cast<std::size_t>(w)] = Clock::now();
    const WkDone done = decode_wk_done(m.payload);
    const auto it = jobs.find(done.job_id);
    if (it == jobs.end() || it->second.state != JobState::Active) return;
    Job& j = it->second;
    if (done.drained && done.chunk.size() == 0) {
      j.drained_by.insert(w);
      return;
    }
    // A mediated grant? Retire its record. No record means the chunk
    // was a masterless self-claim — acked all the same.
    auto& wq = grants[static_cast<std::size_t>(w)];
    const auto g = std::find_if(wq.begin(), wq.end(), [&](const GrantRecord& r) {
      return r.job == done.job_id && r.chunk.begin == done.chunk.begin &&
             r.chunk.end == done.chunk.end;
    });
    if (g != wq.end()) {
      if (j.scheduler && j.scheduler->distributed() && g->slot >= 0)
        j.scheduler->dist()->on_feedback(g->slot, done.chunk.size(),
                                         done.fb_seconds);
      if (j.controller && g->slot >= 0)
        j.controller->note_feedback(g->slot, done.chunk.size(),
                                    done.fb_seconds);
      wq.erase(g);
      --j.outstanding;
    }
    ack_chunk(j, done.chunk);
  };

  const auto ingest_tenant = [&](mp::Message&& m) {
    const int tenant = m.source;
    auto& ts = tenant_state[tenant];
    switch (m.tag) {
      case kTagJobSubmit: {
        ++stats.jobs_submitted;
        metrics.counter("svc.jobs.submitted").add();
        JobStatusMsg reply;
        if (tenants.peer_protocol(tenant) < mp::kProtoService) {
          reply.state = JobState::Rejected;
          reply.error = SubmitError::ProtocolTooOld;
          reply.message = "peer negotiated protocol generation " +
                          std::to_string(tenants.peer_protocol(tenant)) +
                          " < kProtoService";
          ++stats.jobs_rejected;
          metrics.counter("svc.jobs.rejected").add();
          send_status(tenant, reply);
          return;
        }
        if (static_cast<int>(queued.size()) >= config_.max_queued) {
          reply.state = JobState::Rejected;
          reply.error = SubmitError::QueueFull;
          reply.message = "submit queue full (" +
                          std::to_string(config_.max_queued) +
                          " jobs queued); back off and resubmit";
          ++stats.jobs_rejected;
          metrics.counter("svc.jobs.rejected").add();
          send_status(tenant, reply);
          return;
        }
        mp::PayloadReader rd(m.payload);
        Job j;
        try {
          j.spec = rt::JobSpec::from_json(rd.get_string());
          LSS_REQUIRE(!j.spec.workload.empty(),
                      "job spec needs a 'workload' (the daemon builds the "
                      "loop from text; known: uniform, increasing, "
                      "decreasing, conditional, irregular, peaked, "
                      "mandelbrot)");
          j.workload = make_workload(j.spec.workload);
          // Fail unknown schemes now, not at activation.
          (void)make_scheduler(j.spec.scheduler.scheme,
                               j.workload->size(), j.spec.num_pes());
        } catch (const ContractError& e) {
          reply.state = JobState::Rejected;
          reply.error = SubmitError::BadSpec;
          reply.message = e.what();
          ++stats.jobs_rejected;
          metrics.counter("svc.jobs.rejected").add();
          send_status(tenant, reply);
          return;
        }
        j.id = next_id++;
        j.tenant = tenant;
        j.total = j.workload->size();
        j.pes = j.spec.num_pes();
        j.state = JobState::Queued;
        j.submitted_at = Clock::now();
        queued.push_back(j.id);
        reply.job_id = j.id;
        reply.state = JobState::Queued;
        reply.total = j.total;
        jobs.emplace(j.id, std::move(j));
        reply.queue_position = queue_position(reply.job_id);
        send_status(tenant, reply);
        return;
      }
      case kTagJobStatus: {
        const JobStatusMsg query = decode_status(m.payload);
        send_status(tenant, status_of(query.job_id));
        return;
      }
      case kTagSvcBye: {
        ts.detached = true;
        for (auto it = queued.begin(); it != queued.end();) {
          Job& j = jobs.at(*it);
          if (j.tenant == tenant) {
            j.state = JobState::Canceled;
            ++stats.jobs_canceled;
            metrics.counter("svc.jobs.canceled").add();
            it = queued.erase(it);
          } else {
            ++it;
          }
        }
        return;
      }
      default:
        return;
    }
  };

  // ------------------------------------------------------------- the loop

  while (true) {
    for (mp::Message& m : pool.drain(0)) ingest_pool(std::move(m));
    for (mp::Message& m : tenants.drain(0)) ingest_tenant(std::move(m));

    // Tenant death is a silent Bye (TCP disconnects; in-proc peers
    // never die).
    for (auto& [tenant, ts] : tenant_state)
      if (!ts.detached && !tenants.peer_alive(tenant)) {
        mp::Message bye;
        bye.source = tenant;
        bye.tag = kTagSvcBye;
        ingest_tenant(std::move(bye));
      }

    // Failure detection: a grant aging past its job's grace with no
    // liveness signal from the holder kills the holder; a masterless
    // claimant silent past grace likewise (it reports per chunk, so
    // silence means death — there is no grant record to age).
    const auto now = Clock::now();
    for (int w = 1; w <= W; ++w) {
      const auto sw = static_cast<std::size_t>(w);
      if (!alive[sw]) continue;
      bool dead = false;
      for (const GrantRecord& g : grants[sw]) {
        const Job& j = jobs.at(g.job);
        if (!j.spec.faults.detect) continue;
        const auto anchor = std::max(g.granted_at, last_heard[sw]);
        if (std::chrono::duration<double>(now - anchor).count() >
            j.spec.faults.grace) {
          dead = true;
          break;
        }
      }
      if (!dead)
        for (std::int64_t id : active) {
          const Job& j = jobs.at(id);
          if (!j.masterless || !j.spec.faults.detect) continue;
          if (j.opened_by.count(w) == 0 || j.drained_by.count(w) != 0)
            continue;
          const auto anchor = std::max(j.activated_at, last_heard[sw]);
          if (std::chrono::duration<double>(now - anchor).count() >
              j.spec.faults.grace) {
            dead = true;
            break;
          }
        }
      if (dead) kill_worker(w);
    }

    // Masterless reconcile: when every live claimant has drained and
    // nothing is in flight, tickets never acknowledged belonged to
    // dead claimants — re-grant their chunks over the mediated path.
    for (std::int64_t id : active) {
      Job& j = jobs.at(id);
      if (!j.masterless || j.reconciled || j.covered == j.total) continue;
      if (j.outstanding != 0 || !j.reclaim.empty()) continue;
      bool all_drained = !j.opened_by.empty() || live_workers() == 0;
      for (int w : j.opened_by)
        all_drained = all_drained && j.drained_by.count(w) != 0;
      if (!all_drained) continue;
      for (std::uint64_t t = 0; t < j.plan->tickets(); ++t)
        if (!j.acked_ticket[static_cast<std::size_t>(t)]) {
          j.reclaim.push_back(j.plan->chunk(t));
          ++j.reassigned_chunks;
        }
      j.reconciled = true;
    }

    // Completions.
    for (std::size_t i = 0; i < active.size();) {
      Job& j = jobs.at(active[i]);
      if (j.covered == j.total && j.outstanding == 0)
        finish_job(j, JobState::Done);  // erases from `active`
      else
        ++i;
    }

    // With the whole pool gone no active job can ever finish; fail
    // them (and everything queued) rather than spin forever.
    if (live_workers() == 0) {
      while (!active.empty()) finish_job(jobs.at(active.front()),
                                         JobState::Failed);
      for (std::int64_t id : queued) {
        Job& j = jobs.at(id);
        j.state = JobState::Failed;
        ++stats.jobs_failed;
        if (!tenant_state[j.tenant].detached) {
          JobResultMsg msg;
          msg.job_id = j.id;
          msg.state = JobState::Failed;
          msg.scheme = j.spec.scheduler.scheme;
          msg.exactly_once = false;
          tenants.send(0, j.tenant, kTagJobResult, encode_result(msg));
        }
      }
      queued.clear();
    }

    // Admission: priority first, then fair share between tenants
    // (fewest activations so far), then FIFO.
    while (static_cast<int>(active.size()) < config_.max_active &&
           !queued.empty() && live_workers() > 0) {
      auto best = queued.begin();
      for (auto it = std::next(queued.begin()); it != queued.end(); ++it) {
        const Job& a = jobs.at(*it);
        const Job& b = jobs.at(*best);
        const std::int64_t sa = tenant_state[a.tenant].activated;
        const std::int64_t sb = tenant_state[b.tenant].activated;
        if (a.spec.priority > b.spec.priority ||
            (a.spec.priority == b.spec.priority &&
             (sa < sb || (sa == sb && a.id < b.id))))
          best = it;
      }
      Job& j = jobs.at(*best);
      queued.erase(best);
      active.push_back(j.id);
      ++tenant_state[j.tenant].activated;
      j.state = JobState::Active;
      j.activated_at = Clock::now();
      j.t_queued = seconds_since(j.submitted_at);
      j.acked.assign(static_cast<std::size_t>(j.total), 0);
      j.masterless = j.spec.masterless &&
                     rt::masterless_supported(j.spec.scheduler);
      WorkerJobView view;
      view.workload = j.workload;
      if (j.masterless) {
        // A desc with scripted migrations builds the segmented plan —
        // every claimant derives the same concatenated table.
        j.plan = std::make_shared<const rt::MasterlessPlan>(
            j.spec.scheduler, j.total, j.pes);
        j.counter = std::make_shared<rt::InprocTicketCounter>();
        j.acked_ticket.assign(static_cast<std::size_t>(j.plan->tickets()),
                              false);
        view.plan = j.plan;
        view.counter = j.counter;
      } else {
        j.sched_spec = j.spec.scheduler.scheme;
        j.scheduler = std::make_unique<Scheduler>(
            make_scheduler(j.sched_spec, j.total, j.pes));
        j.scheme_chain = j.scheduler->name();
        if (j.scheduler->distributed()) {
          // Service-side ACPs: the job's static override, or derived
          // from its emulated cluster shape exactly how run_threaded
          // derives virtual powers.
          if (!j.spec.scheduler.static_acps.empty()) {
            j.acps = j.spec.scheduler.static_acps;
          } else {
            std::vector<double> vpower(j.spec.relative_speeds);
            const double vmin =
                *std::min_element(vpower.begin(), vpower.end());
            for (double& v : vpower) v /= vmin;
            j.acps.resize(vpower.size());
            const auto policy = cluster::AcpPolicy::improved();
            for (std::size_t s = 0; s < vpower.size(); ++s)
              j.acps[s] = cluster::compute_acp(
                  vpower[s], j.spec.run_queues.empty()
                                 ? 1
                                 : j.spec.run_queues[s],
                  policy);
          }
          j.scheduler->initialize(j.acps);
        } else if (j.spec.scheduler.adaptive.active()) {
          // Per-job adaptive policy (DESIGN.md §16): the replenish
          // pass consults the controller at chunk boundaries and
          // fences a migration by rebuilding the scheduler over the
          // uncovered suffix.
          j.controller.emplace(j.spec.scheduler.adaptive, j.total,
                               j.pes);
        }
      }
      directory.put(j.id, std::move(view));
      for (int w = 1; w <= W; ++w)
        if (alive[static_cast<std::size_t>(w)]) {
          pool.send(0, w, kTagWkOpen, encode_wk_job(j.id));
          j.opened_by.insert(w);
        }
    }

    // Replenish: priority order, reclaim pools first, then the
    // scheduler in strict round-robin slot order (the golden grant
    // order the conformance oracle expects). Per-worker-per-job
    // outstanding is bounded by 1 + pipeline_depth, per-job by the
    // service window — the grant-side backpressure contract.
    std::vector<std::int64_t> order(active);
    std::sort(order.begin(), order.end(),
              [&](std::int64_t a, std::int64_t b) {
                const Job& ja = jobs.at(a);
                const Job& jb = jobs.at(b);
                if (ja.spec.priority != jb.spec.priority)
                  return ja.spec.priority > jb.spec.priority;
                return a < b;
              });
    for (std::int64_t id : order) {
      Job& j = jobs.at(id);
      const int per_worker = 1 + j.spec.pipeline_depth;
      const int cap = std::min(config_.job_window,
                               j.pes * per_worker);
      const auto has_work = [&] {
        if (!j.reclaim.empty()) return true;
        return j.scheduler != nullptr && !j.scheduler->done();
      };
      while (j.outstanding < cap && has_work()) {
        // Least-loaded live worker with window room for this job.
        int pick = -1;
        std::size_t best_load = 0;
        for (int w = 1; w <= W; ++w) {
          const auto sw = static_cast<std::size_t>(w);
          if (!alive[sw]) continue;
          int mine = 0;
          for (const GrantRecord& g : grants[sw]) mine += g.job == id;
          if (mine >= per_worker) continue;
          if (pick < 0 || grants[sw].size() < best_load) {
            pick = w;
            best_load = grants[sw].size();
          }
        }
        if (pick < 0) break;
        Range chunk;
        int slot = -1;
        if (!j.reclaim.empty()) {
          chunk = j.reclaim.front();
          j.reclaim.pop_front();
        } else {
          // Adaptive jobs: fence a scheme migration at this chunk
          // boundary when the controller says so. Grants below the
          // cut drain or reclaim as before (the reclaim queue above
          // bypasses the scheduler), the new scheme plans the
          // uncovered suffix [cut, total).
          if (j.controller) {
            const Index cut = j.sched_offset + j.scheduler->assigned();
            if (const auto m = j.controller->consider(cut, j.sched_spec)) {
              j.sched_spec = m->to;
              j.sched_offset = cut;
              j.scheduler = std::make_unique<Scheduler>(make_scheduler(
                  j.sched_spec, j.total - j.sched_offset, j.pes));
              j.scheme_chain += "->" + j.scheduler->name();
              metrics.counter("svc.migrations").add();
            }
          }
          slot = static_cast<int>(j.slot_cursor % j.pes);
          const double acp =
              j.acps.empty() ? 1.0
                             : j.acps[static_cast<std::size_t>(slot)];
          chunk = j.scheduler->next(slot, acp);
          ++j.slot_cursor;
          if (chunk.size() == 0) break;  // scheduler drained
          chunk.begin += j.sched_offset;
          chunk.end += j.sched_offset;
        }
        GrantRecord rec;
        rec.job = id;
        rec.chunk = chunk;
        rec.slot = slot;
        rec.granted_at = Clock::now();
        grants[static_cast<std::size_t>(pick)].push_back(rec);
        ++j.outstanding;
        metrics.counter("svc.grants").add();
        WkGrant g;
        g.job_id = id;
        g.chunk = chunk;
        pool.send(0, pick, kTagWkGrant, encode_wk_grant(g));
      }
    }

    // Exit: every tenant detached, nothing queued, nothing active.
    bool tenants_done = true;
    for (const auto& [tenant, ts] : tenant_state)
      tenants_done = tenants_done && ts.detached;
    if (tenants_done && queued.empty() && active.empty()) break;

    // Idle wait: the pool comm is the hot path; tenant frames are
    // picked up on the next wake (poll_seconds bounds their latency).
    if (auto m = pool.recv_for(
            0, std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(config_.poll_seconds))))
      ingest_pool(std::move(*m));
  }

  for (int w = 1; w <= W; ++w)
    pool.send(0, w, kTagWkExit, {});
  for (std::thread& t : threads) t.join();

  stats.t_wall = seconds_since(t_start);
  return stats;
}

}  // namespace lss::svc
