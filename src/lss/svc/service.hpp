// The resident multi-tenant loop service (DESIGN.md §15).
//
// Service::run() is the daemon core behind lss_serve: one thread
// owns a pool of worker threads (an in-process mp::Comm, exactly the
// fleet run_threaded spawns) and serves *loop jobs* submitted over a
// second, tenant-facing mp::Transport. Where run_threaded is
// one loop, one fleet, then exit — the paper's mpich batch shape —
// the service keeps the fleet resident and multiplexes it across
// concurrent jobs:
//
//   * every job gets its own scheduler instance from the unified
//     registry (simple, distributed, or masterless plan), planned
//     for JobSpec::relative_speeds.size() slots;
//   * grants are stamped with the job id, so one worker interleaves
//     chunks of different tenants' jobs back to back;
//   * per-job pipeline depth bounds that job's outstanding grants
//     per worker (1 + depth), and a service-wide window bounds them
//     per job — the grant-side half of the backpressure contract;
//   * admission is priority-first, then fair-share between tenants
//     (fewest active+queued jobs first), then FIFO; the submit queue
//     is bounded and overflow is a *typed* rejection (QueueFull),
//     the submit-side half of the backpressure contract;
//   * masterless jobs share a ticket counter + plan with the pool
//     (DESIGN.md §14): workers claim and self-calculate, the service
//     only reconciles unacknowledged tickets when the plan drains;
//   * worker deaths are detected by grant age against the owning
//     job's FaultPolicy.grace, the victim's whole in-flight set is
//     reclaimed and re-granted, and — exactly like rt/master — a
//     dead worker's late completions are fenced, so per-job
//     accounting stays exactly-once.
//
// The loop follows the single-poll reactor discipline of rt/reactor:
// each wake-up drains the pool comm and the tenant transport, ingests
// everything, then runs one replenish/admission pass.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lss/mp/transport.hpp"
#include "lss/obs/run_stats.hpp"
#include "lss/rt/job.hpp"
#include "lss/support/types.hpp"

namespace lss::svc {

struct ServiceConfig {
  /// Resident pool size (worker threads spawned by run()).
  int num_workers = 4;
  /// Emulated relative speed per pool worker, in (0, 1]; empty =
  /// all full speed. Independent of any job's relative_speeds —
  /// those size the *plan*, these throttle the *pool*.
  std::vector<double> worker_speeds;
  /// Submit-queue bound: submits arriving while this many jobs are
  /// queued (admitted but not active) are rejected with QueueFull.
  int max_queued = 32;
  /// Concurrently *active* jobs (scheduler instantiated, grants in
  /// flight); further admitted jobs wait in the queue.
  int max_active = 4;
  /// Service-wide cap on one job's outstanding grants, whatever its
  /// pipeline depth asks for (bounds reclaim cost and frame fan-out,
  /// like MasterConfig.max_pipeline).
  int job_window = 64;
  /// Fault injection, one entry per pool worker: worker w exits
  /// silently before computing its (die_after_chunks[w]+1)-th chunk
  /// (counted across all jobs). Empty = no faults; negative = that
  /// worker never dies. Jobs that should survive need faults.detect.
  std::vector<int> die_after_chunks;
  /// Reactor poll slice while idle, seconds.
  double poll_seconds = 0.002;
  /// Pin pool worker w's thread to rt::pick_pin_cpu(w)
  /// (NUMA-interleaved; see rt/affinity.hpp). Best-effort: refused
  /// pins leave that worker floating. `--pin` on lss_serve.
  bool pin_threads = false;
};

/// What the daemon hands back when it exits: throughput counters and
/// the per-job RunStats rollup (keyed by job id), runner = "svc".
struct ServiceStats {
  std::int64_t jobs_submitted = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_rejected = 0;
  std::int64_t jobs_canceled = 0;
  std::int64_t jobs_failed = 0;
  int workers_lost = 0;
  double t_wall = 0.0;  ///< run() entry to exit, seconds
  std::vector<std::pair<std::int64_t, RunStats>> per_job;

  /// Completed jobs per wall second (0 when nothing completed).
  double jobs_per_second() const {
    return t_wall > 0.0 ? static_cast<double>(jobs_completed) / t_wall : 0.0;
  }

  /// {"jobs_submitted":...,"per_job":{"<id>":{RunStats...},...}}
  std::string to_json() const;
};

class Service {
 public:
  explicit Service(ServiceConfig config);

  /// Serves tenants (ranks 1..num_tenants of `tenants`) until every
  /// tenant has detached (SvcBye or peer death) and no job is queued
  /// or active. Spawns and joins the worker pool internally; blocks
  /// the calling thread for the daemon's whole lifetime.
  ServiceStats run(mp::Transport& tenants, int num_tenants);

 private:
  ServiceConfig config_;
};

}  // namespace lss::svc
