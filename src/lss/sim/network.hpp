// Network model: per-slave links plus the master's NIC, all modelled
// as serially-occupied resources.
//
// Transfers are cut-through: a slave->master message simultaneously
// occupies the slave's uplink and the master's inbound port for
// latency + bytes / min(slave_bw, master_bw). This mirrors blocking
// MPI on a LAN — while the master is receiving a large result from a
// 10 Mbit slave, everyone else's messages queue behind it, which is
// exactly the contention §5 of the paper describes.
#pragma once

#include "lss/cluster/cluster.hpp"
#include "lss/support/types.hpp"

namespace lss::sim {

/// A resource that can serve one transfer at a time.
class SerialResource {
 public:
  struct Slot {
    double start = 0.0;
    double end = 0.0;
    double duration() const { return end - start; }
  };

  /// Reserve the resource for `duration` starting no earlier than
  /// `earliest`; returns the granted slot.
  Slot occupy(double earliest, double duration);

  double free_at() const { return free_at_; }

 private:
  double free_at_ = 0.0;
};

struct Transfer {
  double start = 0.0;    ///< moment the wire work begins
  double arrival = 0.0;  ///< moment the message is fully received
  double busy = 0.0;     ///< wire time (latency + serialization)

  /// Queueing delay before the wire work began.
  double wait(double earliest) const { return start - earliest; }
};

class Network {
 public:
  Network(const cluster::ClusterSpec& cluster, double master_bandwidth_bps,
          double master_latency_s);

  /// Message from slave `s` to the master, initiated at `earliest`.
  Transfer to_master(int s, double bytes, double earliest);
  /// Message from the master to slave `s`.
  Transfer to_slave(int s, double bytes, double earliest);
  /// Direct slave-to-slave message (TreeS partner traffic); does not
  /// touch the master's NIC.
  Transfer slave_to_slave(int from, int to, double bytes, double earliest);

 private:
  Transfer run_transfer(SerialResource& a, SerialResource& b, double bw_a,
                        double bw_b, double latency, double bytes,
                        double earliest);

  const cluster::ClusterSpec& cluster_;
  double master_bw_;
  double master_latency_;
  std::vector<SerialResource> slave_up_;
  std::vector<SerialResource> slave_down_;
  SerialResource master_in_;
  SerialResource master_out_;
};

}  // namespace lss::sim
