// Headless what-if replay: the fast forward simulation the adaptive
// replanner (lss/adapt) scores candidate schemes with, mid-run.
//
// A live master that suspects its scheme no longer fits the cluster
// snapshots what it knows — the uncovered iteration suffix and each
// PE's *measured* delivery rate — and asks, for every candidate
// scheme, "if the remaining work were dispensed under you, when would
// the loop finish?". replay() answers by rebuilding the candidate
// from the unified registry over the suffix and running the same
// grant conversation the mediated master runs, against virtual PEs
// whose service time for a chunk of c iterations is c / rate plus the
// per-grant overhead h the paper's cost model charges (§2-3).
//
// Everything is deterministic by construction: the virtual clock
// starts at `clock_origin_s` (so predictions line up with the live
// run's timeline) and the only randomness — the optional start
// jitter that staggers the first requests like SimConfig does — is
// drawn from the explicit `seed`. Two replays of the same spec return
// bit-identical results, which is what lets the controller's
// decisions (and the tests that replay them) reproduce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lss/support/types.hpp"

namespace lss::sim {

struct ReplaySpec {
  /// Candidate spec, any family the unified registry resolves
  /// ("gss:k=2", "dtss", ...). Distributed candidates are initialized
  /// with the normalized rates as their ACPs.
  std::string scheme = "tss";
  /// The uncovered suffix: how many iterations remain to dispense.
  Index iterations = 0;
  /// Measured per-PE delivery rate, iterations per second. A PE with
  /// rate <= 0 is absent (it never requests work).
  std::vector<double> rates;
  /// Per-grant scheduling overhead h, charged to the PE's timeline on
  /// every chunk it claims (the paper's h in T_par).
  double overhead_s = 0.0;
  /// Virtual-clock origin: predictions are absolute times on the
  /// caller's timeline, not zero-based.
  double clock_origin_s = 0.0;
  /// Each PE's first request is delayed Uniform(0, start_jitter_s),
  /// drawn deterministically from `seed`. 0 = synchronized start.
  double start_jitter_s = 0.0;
  std::uint64_t seed = 1;
};

struct ReplayResult {
  double finish_s = 0.0;    ///< absolute: clock_origin_s + makespan
  double makespan_s = 0.0;  ///< predicted T_par for the suffix
  Index chunks = 0;         ///< grants the candidate would issue
  std::vector<double> pe_busy_s;  ///< per-PE busy time (compute + h)
};

/// Runs the forward simulation to completion. Throws
/// lss::ContractError on unknown schemes or when no PE has a
/// positive rate while iterations remain.
ReplayResult replay(const ReplaySpec& spec);

}  // namespace lss::sim
