#include "lss/sim/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss::sim {

std::string render_gantt(const Report& report, int width) {
  LSS_REQUIRE(width >= 10, "gantt needs at least 10 columns");
  const double horizon = report.t_parallel;
  std::ostringstream os;
  os << "Gantt — " << report.scheme << "  (0 .. "
     << fmt_fixed(horizon, 1) << " s; '#' compute, '=' chunk in "
     << "flight, '.' idle, 'X' crash)\n";
  if (horizon <= 0.0 || report.trace.empty()) {
    os << "  (no trace)\n";
    return os.str();
  }

  const auto column = [&](double t) {
    int c = static_cast<int>(t / horizon * width);
    return std::clamp(c, 0, width - 1);
  };

  const int p = static_cast<int>(report.slaves.size());
  std::vector<std::string> rows(static_cast<std::size_t>(p),
                                std::string(static_cast<std::size_t>(width),
                                            '.'));
  for (const ChunkTrace& tc : report.trace) {
    std::string& row = rows[static_cast<std::size_t>(tc.slave)];
    if (tc.started_at >= 0.0) {
      for (int c = column(tc.assigned_at); c <= column(tc.started_at); ++c)
        if (row[static_cast<std::size_t>(c)] == '.')
          row[static_cast<std::size_t>(c)] = '=';
    }
    const double end =
        tc.completed_at >= 0.0
            ? tc.completed_at
            : horizon;  // lost chunk: the victim computed until death
    if (tc.started_at >= 0.0) {
      for (int c = column(tc.started_at); c <= column(std::min(end, horizon));
           ++c)
        row[static_cast<std::size_t>(c)] = '#';
    }
  }
  for (int s = 0; s < p; ++s) {
    if (report.slaves[static_cast<std::size_t>(s)].crashed) {
      const int c =
          column(report.slaves[static_cast<std::size_t>(s)].finish_time);
      std::string& row = rows[static_cast<std::size_t>(s)];
      for (int k = c; k < width; ++k)
        row[static_cast<std::size_t>(k)] = ' ';
      row[static_cast<std::size_t>(c)] = 'X';
    }
    os << "  PE" << (s + 1) << (s + 1 < 10 ? " " : "") << " |"
       << rows[static_cast<std::size_t>(s)] << "|\n";
  }
  return os.str();
}

}  // namespace lss::sim
