#include "lss/sim/cpu.hpp"

#include <limits>
#include <utility>

#include "lss/support/assert.hpp"

namespace lss::sim {

CpuModel::CpuModel(double speed_ops_per_s, cluster::LoadScript load)
    : speed_(speed_ops_per_s), load_(std::move(load)) {
  LSS_REQUIRE(speed_ops_per_s > 0.0, "CPU speed must be positive");
}

double CpuModel::finish_time(double start, double work) const {
  LSS_REQUIRE(work >= 0.0, "negative work");
  LSS_REQUIRE(start >= 0.0, "negative start time");
  double t = start;
  double left = work;
  while (left > 0.0) {
    const double rate = speed_ / static_cast<double>(load_.run_queue_at(t));
    const double boundary = load_.next_change_after(t);
    if (boundary == std::numeric_limits<double>::infinity())
      return t + left / rate;
    const double capacity = rate * (boundary - t);
    if (capacity >= left) return t + left / rate;
    left -= capacity;
    t = boundary;
  }
  return t;
}

double CpuModel::acp_at(double t, double virtual_power,
                        const cluster::AcpPolicy& policy) const {
  return cluster::compute_acp(virtual_power, load_.run_queue_at(t), policy);
}

}  // namespace lss::sim
