#include "lss/sim/hier_sim.hpp"

#include <algorithm>
#include <cmath>

#include "lss/support/assert.hpp"
#include "lss/support/prng.hpp"

namespace lss::sim {

namespace {
// Same-node messaging (a slave talking to the group master hosted on
// its own machine) costs only an IPC hop.
constexpr double kLocalHop = 1e-5;
}  // namespace

HierSim::HierSim(const SimConfig& config)
    : config_(config),
      network_(config.cluster, config.master_bandwidth_bps,
               config.master_latency_s) {
  LSS_REQUIRE(config.workload != nullptr, "simulation needs a workload");
  LSS_REQUIRE(config.scheduler.kind == SchedulerKind::Hierarchical,
              "HierSim needs a hierarchical scheduler config");
  LSS_REQUIRE(!config.scheduler.groups.empty(),
              "hierarchical scheduling needs at least one group");
  LSS_REQUIRE(config.loads.empty() ||
                  static_cast<int>(config.loads.size()) ==
                      config.cluster.num_slaves(),
              "need one load script per slave (or none)");
  LSS_REQUIRE(!config.faults.any(),
              "fault injection is centralized-only for now");

  const int p = config.cluster.num_slaves();
  slaves_.reserve(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) {
    cluster::LoadScript load =
        config.loads.empty() ? cluster::LoadScript::none()
                             : config.loads[static_cast<std::size_t>(s)];
    slaves_.emplace_back(config.cluster.slave(s).speed, std::move(load));
  }

  // Validate the partition and set up the groups.
  std::vector<bool> seen(static_cast<std::size_t>(p), false);
  groups_.resize(config.scheduler.groups.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const auto& members = config.scheduler.groups[g];
    LSS_REQUIRE(!members.empty(), "empty group");
    for (int s : members) {
      LSS_REQUIRE(s >= 0 && s < p, "group member out of range");
      LSS_REQUIRE(!seen[static_cast<std::size_t>(s)],
                  "slave assigned to two groups");
      seen[static_cast<std::size_t>(s)] = true;
      slaves_[static_cast<std::size_t>(s)].group = static_cast<int>(g);
    }
    groups_[g].members = members;
    groups_[g].host = members.front();
  }
  for (int s = 0; s < p; ++s)
    LSS_REQUIRE(seen[static_cast<std::size_t>(s)],
                "slave missing from the group partition");

  const Index total = config.workload->size();
  cost_prefix_.resize(static_cast<std::size_t>(total) + 1, 0.0);
  for (Index i = 0; i < total; ++i)
    cost_prefix_[static_cast<std::size_t>(i) + 1] =
        cost_prefix_[static_cast<std::size_t>(i)] + config.workload->cost(i);
  execution_count_.assign(static_cast<std::size_t>(total), 0);

  super_ = std::make_unique<distsched::DtssScheduler>(
      total, static_cast<int>(groups_.size()));
}

double HierSim::chunk_cost(Range r) const {
  return cost_prefix_[static_cast<std::size_t>(r.end)] -
         cost_prefix_[static_cast<std::size_t>(r.begin)];
}

Transfer HierSim::slave_to_group(int s, int g, double bytes,
                                 double earliest) {
  const int host = groups_[static_cast<std::size_t>(g)].host;
  if (s == host)
    return Transfer{earliest, earliest + kLocalHop, kLocalHop};
  return network_.slave_to_slave(s, host, bytes, earliest);
}

Transfer HierSim::group_to_slave(int g, int s, double bytes,
                                 double earliest) {
  const int host = groups_[static_cast<std::size_t>(g)].host;
  if (s == host)
    return Transfer{earliest, earliest + kLocalHop, kLocalHop};
  return network_.slave_to_slave(host, s, bytes, earliest);
}

Report HierSim::run() {
  Xoshiro256 jitter_rng(config_.jitter_seed);
  for (int s = 0; s < config_.cluster.num_slaves(); ++s) {
    const double delay =
        config_.start_jitter_s > 0.0
            ? jitter_rng.next_double() * config_.start_jitter_s
            : 0.0;
    if (delay > 0.0)
      engine_.schedule_at(delay, [this, s] { slave_begin(s); });
    else
      slave_begin(s);
  }
  engine_.run();

  Report out;
  out.scheme = config_.scheduler.display_name();
  out.t_parallel = engine_.now();
  out.master_messages = master_messages_;
  out.master_rx_bytes = master_rx_bytes_;
  out.execution_count = execution_count_;
  out.slaves.reserve(slaves_.size());
  for (SlaveState& st : slaves_) {
    st.times.t_wait += out.t_parallel - st.finish;  // terminal barrier
    SlaveStats stats;
    stats.times = st.times;
    stats.finish_time = st.finish;
    stats.iterations = st.iterations;
    stats.chunks = st.chunks;
    out.slaves.push_back(stats);
    out.total_iterations += st.iterations;
  }
  return out;
}

// --------------------------------------------------------------- slaves

void HierSim::slave_begin(int s) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  st.ready_at = engine_.now();
  // ACP with a floor: hierarchical mode does not implement the
  // unavailable-PE polling loop, so every slave participates with at
  // least a token power (DESIGN.md notes the simplification).
  st.acp = std::max(
      st.cpu.acp_at(engine_.now(), config_.cluster.slave(s).virtual_power,
                    config_.acp),
      0.1);
  slave_send_request(s);
}

void HierSim::slave_send_request(int s) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  const double now = engine_.now();
  st.times.t_wait += now - st.ready_at;
  st.ready_at = now;
  st.request_sent_at = now;

  const double bytes = config_.protocol.request_bytes + st.carried_bytes;
  const double carried = st.carried_bytes;
  st.carried_bytes = 0.0;
  const Transfer tr = slave_to_group(s, st.group, bytes, now);
  st.request_busy = tr.busy;
  const double acp = st.acp;
  const int g = st.group;
  engine_.schedule_at(tr.arrival, [this, g, s, acp, carried] {
    groups_[static_cast<std::size_t>(g)].result_bytes += carried;
    group_on_arrival(g, s, acp);
  });
}

void HierSim::slave_on_reply(int s, std::vector<Range> chunks,
                             double reply_busy) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  const double now = engine_.now();
  const double round_trip = now - st.request_sent_at;
  const double com = st.request_busy + reply_busy;
  st.times.t_com += com;
  st.times.t_wait += std::max(0.0, round_trip - com);

  Index size = 0;
  double cost = 0.0;
  for (const Range& r : chunks) {
    size += r.size();
    cost += chunk_cost(r);
  }
  if (size == 0) {
    st.terminated = true;
    st.finish = now;
    st.ready_at = now;
    // If this was the group's last active member, flush the group's
    // remaining results up to the super master.
    GroupState& grp = groups_[static_cast<std::size_t>(st.group)];
    bool all_done = true;
    for (int m : grp.members)
      all_done = all_done && slaves_[static_cast<std::size_t>(m)].terminated;
    if (all_done && grp.result_bytes > 0.0) {
      master_rx_bytes_ += grp.result_bytes + config_.protocol.request_bytes;
      const Transfer up = network_.to_master(
          grp.host, grp.result_bytes + config_.protocol.request_bytes,
          engine_.now());
      grp.result_bytes = 0.0;
      st.times.t_com += up.busy;  // the host's NIC does the work
      engine_.schedule_at(up.arrival, [this] { ++master_messages_; });
    }
    return;
  }
  const double done_at = st.cpu.finish_time(now, cost);
  st.times.t_comp += done_at - now;
  engine_.schedule_at(done_at, [this, s, chunks] {
    slave_on_compute_done(s, chunks);
  });
}

void HierSim::slave_on_compute_done(int s, std::vector<Range> chunks) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  Index size = 0;
  for (const Range& r : chunks) {
    for (Index i = r.begin; i < r.end; ++i)
      ++execution_count_[static_cast<std::size_t>(i)];
    size += r.size();
  }
  st.iterations += size;
  ++st.chunks;
  st.carried_bytes +=
      static_cast<double>(size) * config_.protocol.bytes_per_iter;
  st.ready_at = engine_.now();

  const double fresh = st.cpu.acp_at(
      engine_.now(), config_.cluster.slave(s).virtual_power, config_.acp);
  const double new_acp = std::max(fresh, 0.1);
  GroupState& grp = groups_[static_cast<std::size_t>(st.group)];
  if (grp.gathered == static_cast<int>(grp.members.size()))
    grp.acp_sum += new_acp - st.acp;  // keep the aggregate fresh
  st.acp = new_acp;
  slave_send_request(s);
}

// --------------------------------------------------------- group master

void HierSim::group_on_arrival(int g, int s, double acp) {
  GroupState& grp = groups_[static_cast<std::size_t>(g)];
  slaves_[static_cast<std::size_t>(s)].acp = acp;

  if (grp.gathered < static_cast<int>(grp.members.size())) {
    // Local gather: aggregate the group's power, then announce the
    // group to the super master with the first refill request.
    ++grp.gathered;
    grp.acp_sum += acp;
    grp.waiting.push_back(s);
    if (grp.gathered == static_cast<int>(grp.members.size()))
      group_maybe_refill(g);
    return;
  }
  grp.waiting.push_back(s);
  group_try_serve(g);
}

void HierSim::group_try_serve(int g) {
  GroupState& grp = groups_[static_cast<std::size_t>(g)];
  if (grp.serving || grp.waiting.empty()) return;
  if (grp.gathered < static_cast<int>(grp.members.size())) return;
  if (grp.pool.empty() && !grp.drained) {
    group_maybe_refill(g);
    return;  // wait for the refill to land
  }
  grp.serving = true;
  const int s = grp.waiting.front();
  grp.waiting.pop_front();
  engine_.schedule_after(config_.protocol.master_overhead_s,
                         [this, g, s] { group_serve(g, s); });
}

void HierSim::group_serve(int g, int s) {
  GroupState& grp = groups_[static_cast<std::size_t>(g)];
  std::vector<Range> chunks;
  if (!grp.pool.empty()) {
    // Local DFSS-style split: half the pool, weighted by the
    // requester's share of the group's power.
    const double share =
        static_cast<double>(grp.pool.remaining()) *
        slaves_[static_cast<std::size_t>(s)].acp / (2.0 * grp.acp_sum);
    Index n = static_cast<Index>(std::max(1.0, std::floor(share)));
    chunks = grp.pool.take_front(n);
  } else {
    LSS_ASSERT(grp.drained, "serving from an empty, undrained pool");
  }
  const Transfer tr =
      group_to_slave(g, s, config_.protocol.reply_bytes, engine_.now());
  const double busy = tr.busy;
  engine_.schedule_at(tr.arrival, [this, s, chunks, busy] {
    slave_on_reply(s, chunks, busy);
  });
  grp.serving = false;
  group_maybe_refill(g);
  group_try_serve(g);
}

void HierSim::group_maybe_refill(int g) {
  GroupState& grp = groups_[static_cast<std::size_t>(g)];
  if (grp.drained || grp.refill_outstanding) return;
  const bool low_water =
      grp.pool.remaining() < std::max<Index>(grp.last_refill / 2, 1);
  if (!low_water) return;
  grp.refill_outstanding = true;
  // The refill request carries the accumulated results upward.
  const double bytes = config_.protocol.request_bytes + grp.result_bytes;
  grp.result_bytes = 0.0;
  master_rx_bytes_ += bytes;
  const Transfer tr = network_.to_master(grp.host, bytes, engine_.now());
  engine_.schedule_at(tr.arrival, [this, g, bytes] {
    super_on_refill_request(g, bytes);
  });
}

void HierSim::super_on_refill_request(int g, double /*result_bytes*/) {
  ++master_messages_;

  if (!super_planned_) {
    if (++groups_gathered_ == static_cast<int>(groups_.size())) {
      std::vector<double> acps;
      acps.reserve(groups_.size());
      for (const GroupState& gs : groups_) acps.push_back(gs.acp_sum);
      super_->initialize(acps);
      super_planned_ = true;
      // Answer every queued first refill.
      for (std::size_t gg = 0; gg < groups_.size(); ++gg) {
        GroupState& other = groups_[gg];
        if (!other.refill_outstanding) continue;
        engine_.schedule_after(config_.protocol.master_overhead_s,
                               [this, gg] {
          GroupState& target = groups_[gg];
          const Range super_chunk =
              super_->next(static_cast<int>(gg), target.acp_sum);
          const Transfer tr = network_.to_slave(
              target.host, config_.protocol.reply_bytes, engine_.now());
          const bool last = super_chunk.empty();
          engine_.schedule_at(tr.arrival, [this, gg, super_chunk, last] {
            group_on_refill(static_cast<int>(gg),
                            super_chunk.empty()
                                ? std::vector<Range>{}
                                : std::vector<Range>{super_chunk},
                            last);
          });
        });
      }
    }
    return;
  }

  engine_.schedule_after(config_.protocol.master_overhead_s, [this, g] {
    GroupState& target = groups_[static_cast<std::size_t>(g)];
    const Range super_chunk = super_->next(g, target.acp_sum);
    const Transfer tr = network_.to_slave(
        target.host, config_.protocol.reply_bytes, engine_.now());
    const bool last = super_chunk.empty();
    engine_.schedule_at(tr.arrival, [this, g, super_chunk, last] {
      group_on_refill(g,
                      super_chunk.empty() ? std::vector<Range>{}
                                          : std::vector<Range>{super_chunk},
                      last);
    });
  });
}

void HierSim::group_on_refill(int g, std::vector<Range> ranges, bool last) {
  GroupState& grp = groups_[static_cast<std::size_t>(g)];
  grp.refill_outstanding = false;
  Index got = 0;
  for (const Range& r : ranges) {
    got += r.size();
    grp.pool.add(r);
  }
  grp.last_refill = got;
  if (last) grp.drained = true;

  if (grp.pool.empty() && grp.drained) {
    // Terminate everyone still waiting.
    while (!grp.waiting.empty()) {
      const int s = grp.waiting.front();
      grp.waiting.pop_front();
      const Transfer tr =
          group_to_slave(g, s, config_.protocol.reply_bytes, engine_.now());
      const double busy = tr.busy;
      engine_.schedule_at(tr.arrival, [this, s, busy] {
        slave_on_reply(s, {}, busy);
      });
    }
    return;
  }
  group_try_serve(g);
}

}  // namespace lss::sim
