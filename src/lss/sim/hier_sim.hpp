// Hierarchical Distributed Self-Scheduling (extension) — a two-level
// master tree for clusters where a single master saturates:
//
//   super master --(super-chunks, DTSS over group powers)--> group
//   masters --(local DFSS-style power splits)--> slaves
//
// Each group's first member hosts its group master, so group-local
// traffic shares that node's link (both costs and contention are
// modelled). Slaves piggy-back results to their group master, which
// batches them upward with its refill requests — the central master
// sees G conversations instead of p.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "lss/distsched/dtss.hpp"
#include "lss/metrics/timing.hpp"
#include "lss/sim/config.hpp"
#include "lss/sim/cpu.hpp"
#include "lss/sim/engine.hpp"
#include "lss/sim/network.hpp"
#include "lss/sim/report.hpp"
#include "lss/treesched/tree_sched.hpp"

namespace lss::sim {

class HierSim {
 public:
  explicit HierSim(const SimConfig& config);

  Report run();

 private:
  struct SlaveState {
    CpuModel cpu;
    metrics::TimeBreakdown times;
    double ready_at = 0.0;
    double request_sent_at = 0.0;
    double request_busy = 0.0;
    double carried_bytes = 0.0;
    double acp = 0.0;
    double finish = 0.0;
    Index iterations = 0;
    Index chunks = 0;
    bool terminated = false;
    int group = 0;

    SlaveState(double speed, cluster::LoadScript load)
        : cpu(speed, std::move(load)) {}
  };

  struct GroupState {
    std::vector<int> members;
    int host = 0;  ///< slave whose node runs this group master
    treesched::WorkPool pool;
    std::deque<int> waiting;     ///< parked member requests
    double acp_sum = 0.0;
    double result_bytes = 0.0;   ///< accumulated, unforwarded results
    Index last_refill = 0;
    bool refill_outstanding = false;
    bool drained = false;  ///< super master said: no more work
    bool serving = false;
    int gathered = 0;
  };

  // Slave side (talks to its group master).
  void slave_begin(int s);
  void slave_send_request(int s);
  void slave_on_reply(int s, std::vector<Range> chunks,
                      double reply_busy);
  void slave_on_compute_done(int s, std::vector<Range> chunks);

  // Group master side.
  void group_on_arrival(int g, int s, double acp);
  void group_try_serve(int g);
  void group_serve(int g, int s);
  void group_maybe_refill(int g);
  void group_on_refill(int g, std::vector<Range> ranges, bool last);

  // Super master side.
  void super_on_refill_request(int g, double result_bytes);

  double chunk_cost(Range r) const;
  Transfer slave_to_group(int s, int g, double bytes, double earliest);
  Transfer group_to_slave(int g, int s, double bytes, double earliest);

  const SimConfig& config_;
  Engine engine_;
  Network network_;
  std::unique_ptr<distsched::DtssScheduler> super_;
  std::vector<SlaveState> slaves_;
  std::vector<GroupState> groups_;
  std::vector<double> cost_prefix_;
  std::vector<int> execution_count_;
  int groups_gathered_ = 0;
  bool super_planned_ = false;
  int master_messages_ = 0;
  double master_rx_bytes_ = 0.0;
};

}  // namespace lss::sim
