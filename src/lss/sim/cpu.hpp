// Processor model with run-queue multiplexing.
//
// A node executes `speed` basic operations per second, shared equally
// among the processes in its run queue (the paper's §3.1 assumption).
// Our loop process therefore advances at speed / Q(t) where
// Q(t) = 1 + external(t) from the node's load script.
#pragma once

#include "lss/cluster/acp.hpp"
#include "lss/cluster/load.hpp"
#include "lss/support/types.hpp"

namespace lss::sim {

class CpuModel {
 public:
  CpuModel(double speed_ops_per_s, cluster::LoadScript load);

  double speed() const { return speed_; }
  const cluster::LoadScript& load() const { return load_; }

  /// Completion time of `work` basic operations started at `start`,
  /// integrating the 1/Q(t) share across load-script changes.
  double finish_time(double start, double work) const;

  /// Run-queue length at time t (>= 1).
  int run_queue_at(double t) const { return load_.run_queue_at(t); }

  /// The slave-side ACP computation (paper Slave step 1): A_i from
  /// the node's virtual power and the *current* run queue.
  double acp_at(double t, double virtual_power,
                const cluster::AcpPolicy& policy) const;

 private:
  double speed_;
  cluster::LoadScript load_;
};

}  // namespace lss::sim
