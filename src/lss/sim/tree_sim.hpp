// Tree Scheduling simulation (paper §5, §6.1; Kim & Purtilo 1996).
//
// Protocol: the coordinator hands out contiguous initial ranges (even
// for the simple variant, virtual-power-weighted for the distributed
// variant). Slaves execute from their own pool; an idle slave asks
// its predefined partners (binomial-tree order) for work and receives
// a weighted half of the victim's remaining range. Results flow to
// the coordinator at fixed intervals (plus a flush when a slave goes
// idle); the coordinator broadcasts termination once every iteration
// has been reported.
#pragma once

#include <vector>

#include "lss/metrics/timing.hpp"
#include "lss/sim/config.hpp"
#include "lss/sim/cpu.hpp"
#include "lss/sim/engine.hpp"
#include "lss/sim/network.hpp"
#include "lss/sim/report.hpp"
#include "lss/treesched/tree.hpp"
#include "lss/treesched/tree_sched.hpp"

namespace lss::sim {

class TreeSim {
 public:
  explicit TreeSim(const SimConfig& config);

  Report run();

 private:
  struct SlaveState {
    CpuModel cpu;
    treesched::WorkPool pool;
    metrics::TimeBreakdown times;
    double finish = 0.0;
    Index iterations = 0;
    Index chunks = 0;  ///< work deliveries (initial + steals)
    bool computing = false;
    bool idle = false;
    bool terminated = false;
    bool start_pending = false;   ///< compute deferred behind a send
    double blocked_until = 0.0;   ///< blocking result send in flight
    double idle_since = 0.0;
    double com_while_idle = 0.0;
    int partner_cursor = 0;
    int round_left = 0;
    double unreported_bytes = 0.0;
    Index unreported_iters = 0;

    SlaveState(double speed, cluster::LoadScript load)
        : cpu(speed, std::move(load)) {}
  };

  void deliver_initial(int s, Range range);
  void on_work_arrive(int s, std::vector<Range> ranges);
  void start_compute(int s);
  void on_iter_done(int s, Index iter);
  void become_idle(int s);
  void try_steal(int s);
  void on_steal_request(int victim, int thief);
  void on_steal_reply(int thief, std::vector<Range> ranges);
  void flush_report(int s);
  void schedule_report_tick(int s);
  void master_on_report(Index count);
  void end_idle(int s);

  const SimConfig& config_;
  Engine engine_;
  Network network_;
  treesched::PartnerTree tree_;
  std::vector<double> weights_;
  std::vector<SlaveState> slaves_;
  std::vector<double> cost_prefix_;
  std::vector<int> execution_count_;
  Index reported_total_ = 0;
  bool terminate_sent_ = false;
  int master_messages_ = 0;
  double master_rx_bytes_ = 0.0;
};

}  // namespace lss::sim
