// Discrete-event simulation core: a clock and a time-ordered event
// queue. Ties are broken by insertion order, which together with the
// deterministic PRNGs makes every simulation bit-replayable.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "lss/support/types.hpp"

namespace lss::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  /// Schedule `cb` at absolute time t >= now().
  void schedule_at(double t, Callback cb);
  /// Schedule `cb` after a non-negative delay.
  void schedule_after(double delay, Callback cb);

  /// Process a single event; false when the queue is empty.
  bool step();
  /// Run until the queue drains (or `max_events` processed).
  void run(std::uint64_t max_events = 50'000'000);

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    double t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace lss::sim
