// ASCII Gantt chart of a centralized run's chunk trace: one row per
// PE, time left to right; '#' computing, '=' waiting for the chunk
// to arrive (assigned but not started), '.' idle, 'X' crash.
#pragma once

#include <string>

#include "lss/sim/report.hpp"

namespace lss::sim {

/// Renders the report's trace. `width` = characters per timeline.
std::string render_gantt(const Report& report, int width = 80);

}  // namespace lss::sim
