// Replicated experiments: run the same configuration under varying
// OS-noise seeds (start-time jitter) and report distributional
// statistics of T_p — the error bars the paper's single-shot tables
// lack.
#pragma once

#include <cstdint>
#include <vector>

#include "lss/sim/config.hpp"
#include "lss/sim/report.hpp"

namespace lss::sim {

struct ReplicationResult {
  std::string scheme;
  int replications = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::vector<double> t_parallel;  ///< per-replication values
};

/// Runs `replications` copies of `config`, overriding jitter_seed with
/// base_seed, base_seed+1, ... and start_jitter_s with `jitter_s`
/// (default: a few master-overhead quanta). Every run must pass the
/// exactly-once check.
ReplicationResult run_replicated(SimConfig config, int replications,
                                 std::uint64_t base_seed = 1,
                                 double jitter_s = 5e-3);

}  // namespace lss::sim
