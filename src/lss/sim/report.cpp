#include "lss/sim/report.hpp"

#include "lss/support/strings.hpp"
#include "lss/support/table.hpp"

namespace lss::sim {

bool Report::exactly_once() const {
  if (starved) return false;
  for (int c : execution_count)
    if (c != 1) return false;
  return true;
}

bool Report::exactly_once_acknowledged() const {
  if (starved) return false;
  for (int c : acknowledged_count)
    if (c != 1) return false;
  return true;
}

std::vector<double> Report::comp_times() const {
  std::vector<double> out;
  out.reserve(slaves.size());
  for (const SlaveStats& s : slaves) out.push_back(s.times.t_comp);
  return out;
}

RunStats Report::stats() const {
  RunStats out;
  out.scheme = scheme;
  out.runner = "sim";
  out.dispatch_path = "sim-event";
  out.num_pes = static_cast<int>(slaves.size());
  out.iterations = total_iterations;
  out.t_wall = t_parallel;
  out.per_pe.reserve(slaves.size());
  out.iterations_per_pe.reserve(slaves.size());
  out.chunks_per_pe.reserve(slaves.size());
  for (const SlaveStats& s : slaves) {
    out.chunks += s.chunks;
    out.per_pe.push_back(s.times);
    out.iterations_per_pe.push_back(s.iterations);
    out.chunks_per_pe.push_back(s.chunks);
  }
  return out;
}

std::string Report::to_table(int decimals) const {
  TextTable t({"PE", "Tcom/Twait/Tcomp", "iters", "chunks"});
  for (std::size_t i = 0; i < slaves.size(); ++i) {
    const SlaveStats& s = slaves[i];
    t.add_row({std::to_string(i + 1), s.times.to_cell(decimals),
               std::to_string(s.iterations), std::to_string(s.chunks)});
  }
  t.add_rule();
  t.add_row({"T_p", fmt_fixed(t_parallel, decimals), "", ""});
  return scheme + (starved ? "  [STARVED]" : "") + "\n" + t.to_string();
}

}  // namespace lss::sim
