// Simulation results: per-PE time breakdowns (Tables 2-3) and the
// invariants the test suite checks (exactly-once execution).
#pragma once

#include <string>
#include <vector>

#include "lss/metrics/timing.hpp"
#include "lss/obs/run_stats.hpp"
#include "lss/support/types.hpp"

namespace lss::sim {

struct SlaveStats {
  metrics::TimeBreakdown times;
  double finish_time = 0.0;  ///< slave's own last activity
  Index iterations = 0;      ///< loop iterations it executed
  Index chunks = 0;          ///< chunks (scheduling messages) received
  bool crashed = false;      ///< fail-stop fault fired on this slave
};

/// One chunk's lifecycle in a centralized run (for Gantt charts and
/// chunk-profile figures). Times are simulated seconds; a chunk lost
/// to a crash has completed_at < 0.
struct ChunkTrace {
  int slave = 0;
  Range range;
  double assigned_at = 0.0;   ///< master decided
  double started_at = -1.0;   ///< reply reached the slave
  double completed_at = -1.0; ///< computation finished
  bool reassigned = false;    ///< re-issued after a timeout
};

struct Report {
  std::string scheme;
  double t_parallel = 0.0;  ///< T_p, measured at the master
  std::vector<SlaveStats> slaves;
  /// Chunk lifecycle log (centralized runs; empty for TreeS).
  std::vector<ChunkTrace> trace;
  Index total_iterations = 0;
  int master_messages = 0;
  /// Payload bytes that crossed the master's inbound port (requests,
  /// piggy-backed results, heartbeats, reports).
  double master_rx_bytes = 0.0;
  int replans = 0;        ///< distributed schemes: step-2c replans
  bool starved = false;   ///< no PE had positive ACP (original DTSS trap)
  /// execution_count[i] = times iteration i was executed. Exactly 1
  /// on reliable runs; reassigned iterations may run more than once
  /// under faults (a victim may have computed them before dying).
  std::vector<int> execution_count;
  /// acknowledged_count[i] = times iteration i's results reached the
  /// master (piggy-back protocol). Must be exactly 1 even under
  /// faults — the fault-tolerance correctness criterion.
  std::vector<int> acknowledged_count;
  /// Chunks the master reassigned after declaring a slave dead.
  int reassignments = 0;

  /// True when every iteration ran exactly once.
  bool exactly_once() const;
  /// True when every iteration's results were delivered exactly once
  /// (the guarantee that survives fail-stop crashes).
  bool exactly_once_acknowledged() const;
  /// Per-PE computation times (for imbalance metrics).
  std::vector<double> comp_times() const;
  /// The paper's table cell column for this run.
  std::string to_table(int decimals = 1) const;
  /// The runner-agnostic result slice (obs exporters, benches).
  RunStats stats() const;
};

}  // namespace lss::sim
