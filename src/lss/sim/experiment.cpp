#include "lss/sim/experiment.hpp"

#include "lss/sim/simulation.hpp"
#include "lss/support/assert.hpp"
#include "lss/support/stats.hpp"

namespace lss::sim {

ReplicationResult run_replicated(SimConfig config, int replications,
                                 std::uint64_t base_seed, double jitter_s) {
  LSS_REQUIRE(replications >= 1, "need at least one replication");
  LSS_REQUIRE(jitter_s >= 0.0, "jitter must be non-negative");
  ReplicationResult out;
  out.replications = replications;
  config.start_jitter_s = jitter_s;
  for (int r = 0; r < replications; ++r) {
    config.jitter_seed = base_seed + static_cast<std::uint64_t>(r);
    const Report rep = run_simulation(config);
    LSS_ASSERT(rep.starved || rep.exactly_once() ||
                   rep.exactly_once_acknowledged(),
               "replication violated the coverage invariant");
    out.scheme = rep.scheme;
    out.t_parallel.push_back(rep.t_parallel);
  }
  const Summary s = summarize(out.t_parallel);
  out.mean = s.mean;
  out.stddev = s.stddev;
  out.min = s.min;
  out.max = s.max;
  out.median = median(out.t_parallel);
  return out;
}

}  // namespace lss::sim
