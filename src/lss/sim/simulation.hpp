// Top-level simulation entry points.
//
// run_simulation() executes one parallel-loop run on the modelled
// cluster under the configured scheme and returns the per-PE time
// breakdown (the content of the paper's Tables 2-3). Dispatches to
// the centralized master-slave protocol (simple and distributed
// schemes) or the TreeS partner protocol.
#pragma once

#include "lss/sim/config.hpp"
#include "lss/sim/report.hpp"

namespace lss::sim {

Report run_simulation(const SimConfig& config);

/// Serial reference: the loop on one dedicated PE of the given speed,
/// no scheduling or communication. Baseline for speedup figures.
double serial_time(const Workload& workload, double speed_ops_per_s);

}  // namespace lss::sim
