// Centralized master-slave protocol simulation (paper §2.2, §5):
//
//   slave:  request(+piggy-backed previous results, +A_i if
//           distributed) -> wait -> compute chunk -> repeat
//   master: FIFO service; chunk from the scheme; replies; terminates
//           slaves when the loop is exhausted.
//
// Used for both the simple (§2) and distributed (§3/§6) schemes; the
// only difference is whether requests carry ACPs and how the chunk is
// chosen.
#pragma once

#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "lss/distsched/dfactory.hpp"
#include "lss/metrics/timing.hpp"
#include "lss/sched/factory.hpp"
#include "lss/sim/config.hpp"
#include "lss/sim/cpu.hpp"
#include "lss/sim/engine.hpp"
#include "lss/sim/network.hpp"
#include "lss/sim/report.hpp"

namespace lss::sim {

class CentralizedSim {
 public:
  explicit CentralizedSim(const SimConfig& config);

  Report run();

 private:
  struct SlaveState {
    CpuModel cpu;
    metrics::TimeBreakdown times;
    double ready_at = 0.0;        ///< finished previous chunk / t0
    double request_sent_at = 0.0; ///< current cycle's send initiation
    double request_busy = 0.0;    ///< wire time of the current request
    double carried_bytes = 0.0;   ///< piggy-back payload
    double stored_bytes = 0.0;    ///< end-collection accumulation
    double acp = 0.0;
    Index fb_iters = 0;       ///< measured-feedback payload for the
    double fb_seconds = 0.0;  ///< next request (previous chunk's size
                              ///< and compute duration)
    double finish = 0.0;
    Index iterations = 0;
    Index chunks = 0;
    bool reported = false;  ///< sent its initial ACP report
    bool terminated = false;
    bool crashed = false;   ///< fail-stop fault has fired
    // Master-side per-slave knowledge (fault tolerance):
    Range outstanding{};       ///< assigned but unacknowledged chunk
    int outstanding_attempts = 0;  ///< times this chunk was reassigned
    double last_heard = 0.0;   ///< last message arrival at the master

    SlaveState(double speed, cluster::LoadScript load)
        : cpu(speed, std::move(load)) {}
  };

  struct Request {
    int slave = 0;
    double acp = 0.0;
    Index fb_iters = 0;
    double fb_seconds = 0.0;
  };

  bool distributed() const {
    return config_.scheduler.kind == SchedulerKind::Distributed;
  }

  // Slave side.
  void slave_begin(int s);
  void slave_poll_until_available(int s);
  void slave_send_request(int s);
  void slave_on_reply(int s, Range chunk, double reply_busy,
                      std::size_t trace_id);
  void slave_on_compute_done(int s, Range chunk, std::size_t trace_id);

  // Master side.
  void master_on_arrival(int s, Request rq);
  void master_try_serve();
  void master_serve(Request rq);
  void finish_gather();

  // Fault tolerance (extension; see sim::FaultPlan).
  void schedule_crashes();
  void schedule_heartbeat(int s);
  void schedule_timeout_scan();
  void acknowledge_outstanding(int s);
  void maybe_release_parked();

  double chunk_cost(Range r) const;

  const SimConfig& config_;
  Engine engine_;
  Network network_;
  std::unique_ptr<sched::ChunkScheduler> simple_;
  std::unique_ptr<distsched::DistScheduler> dist_;
  std::vector<SlaveState> slaves_;
  std::vector<double> cost_prefix_;  ///< prefix sums of iteration costs
  std::vector<int> execution_count_;
  std::deque<Request> queue_;
  struct PoolEntry {
    Range range;
    int attempts = 0;  ///< drives the exponential timeout backoff
  };
  std::deque<PoolEntry> reassign_pool_;  ///< timed-out chunks to re-issue
  std::vector<Request> parked_;       ///< requests waiting on the pool
  std::vector<int> acknowledged_count_;
  std::vector<ChunkTrace> trace_;
  Index acked_total_ = 0;
  int reassignments_ = 0;
  std::vector<double> gather_acps_;
  std::vector<int> gather_order_;  ///< report arrival order (step 1a)
  int gather_pending_ = 0;
  bool gather_done_ = false;
  bool serving_ = false;
  bool starved_ = false;
  int master_messages_ = 0;
  double master_rx_bytes_ = 0.0;
};

}  // namespace lss::sim
