#include "lss/sim/simulation.hpp"

#include "lss/sim/centralized.hpp"
#include "lss/sim/hier_sim.hpp"
#include "lss/sim/tree_sim.hpp"
#include "lss/support/assert.hpp"

namespace lss::sim {

Report run_simulation(const SimConfig& config) {
  if (config.scheduler.kind == SchedulerKind::Tree)
    return TreeSim(config).run();
  if (config.scheduler.kind == SchedulerKind::Hierarchical)
    return HierSim(config).run();
  return CentralizedSim(config).run();
}

double serial_time(const Workload& workload, double speed_ops_per_s) {
  LSS_REQUIRE(speed_ops_per_s > 0.0, "speed must be positive");
  return total_cost(workload) / speed_ops_per_s;
}

}  // namespace lss::sim
