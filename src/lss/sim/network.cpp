#include "lss/sim/network.hpp"

#include <algorithm>

#include "lss/support/assert.hpp"

namespace lss::sim {

SerialResource::Slot SerialResource::occupy(double earliest,
                                            double duration) {
  LSS_REQUIRE(duration >= 0.0, "negative occupation");
  const double start = std::max(earliest, free_at_);
  free_at_ = start + duration;
  return Slot{start, free_at_};
}

Network::Network(const cluster::ClusterSpec& cluster,
                 double master_bandwidth_bps, double master_latency_s)
    : cluster_(cluster),
      master_bw_(master_bandwidth_bps),
      master_latency_(master_latency_s),
      slave_up_(static_cast<std::size_t>(cluster.num_slaves())),
      slave_down_(static_cast<std::size_t>(cluster.num_slaves())) {
  LSS_REQUIRE(master_bandwidth_bps > 0.0, "master bandwidth must be positive");
  LSS_REQUIRE(master_latency_s >= 0.0, "latency must be non-negative");
}

Transfer Network::run_transfer(SerialResource& a, SerialResource& b,
                               double bw_a, double bw_b, double latency,
                               double bytes, double earliest) {
  LSS_REQUIRE(bytes >= 0.0, "negative message size");
  const double duration = latency + bytes / std::min(bw_a, bw_b);
  // Cut-through: both endpoints are busy for the whole transfer. The
  // start must respect both resources' availability.
  const double start = std::max({earliest, a.free_at(), b.free_at()});
  a.occupy(start, duration);
  b.occupy(start, duration);
  return Transfer{start, start + duration, duration};
}

Transfer Network::to_master(int s, double bytes, double earliest) {
  const auto& link = cluster_.slave(s).link;
  return run_transfer(slave_up_[static_cast<std::size_t>(s)], master_in_,
                      link.bandwidth_bps, master_bw_,
                      std::max(link.latency_s, master_latency_), bytes,
                      earliest);
}

Transfer Network::to_slave(int s, double bytes, double earliest) {
  const auto& link = cluster_.slave(s).link;
  return run_transfer(master_out_, slave_down_[static_cast<std::size_t>(s)],
                      master_bw_, link.bandwidth_bps,
                      std::max(link.latency_s, master_latency_), bytes,
                      earliest);
}

Transfer Network::slave_to_slave(int from, int to, double bytes,
                                 double earliest) {
  LSS_REQUIRE(from != to, "slave cannot message itself");
  const auto& lf = cluster_.slave(from).link;
  const auto& lt = cluster_.slave(to).link;
  return run_transfer(slave_up_[static_cast<std::size_t>(from)],
                      slave_down_[static_cast<std::size_t>(to)],
                      lf.bandwidth_bps, lt.bandwidth_bps,
                      std::max(lf.latency_s, lt.latency_s), bytes, earliest);
}

}  // namespace lss::sim
