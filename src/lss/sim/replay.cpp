#include "lss/sim/replay.hpp"

#include <algorithm>
#include <limits>

#include "lss/api/scheduler.hpp"
#include "lss/support/assert.hpp"
#include "lss/support/prng.hpp"

namespace lss::sim {

ReplayResult replay(const ReplaySpec& spec) {
  LSS_REQUIRE(spec.iterations >= 0,
              "replay iteration count must be non-negative");
  LSS_REQUIRE(!spec.rates.empty(), "replay needs at least one PE rate");
  LSS_REQUIRE(spec.overhead_s >= 0.0, "overhead must be non-negative");
  LSS_REQUIRE(spec.start_jitter_s >= 0.0,
              "start jitter must be non-negative");

  const int num_pes = static_cast<int>(spec.rates.size());
  double rate_sum = 0.0;
  for (double r : spec.rates) rate_sum += std::max(r, 0.0);
  LSS_REQUIRE(spec.iterations == 0 || rate_sum > 0.0,
              "no PE has a positive rate; the suffix can never finish");

  ReplayResult out;
  out.pe_busy_s.assign(spec.rates.size(), 0.0);
  out.finish_s = spec.clock_origin_s;
  if (spec.iterations == 0) return out;

  Scheduler scheduler =
      make_scheduler(spec.scheme, spec.iterations, num_pes);
  // Distributed candidates see the measured rates as their ACPs —
  // exactly what the live master would feed a replacement scheme.
  std::vector<double> acps(spec.rates.size(), 0.0);
  for (std::size_t i = 0; i < spec.rates.size(); ++i)
    acps[i] = std::max(spec.rates[i], 0.0) / rate_sum;
  scheduler.initialize(acps);

  constexpr double kNever = std::numeric_limits<double>::infinity();
  // free_at[i]: when PE i next requests; kNever = absent or retired.
  std::vector<double> free_at(spec.rates.size(), kNever);
  Xoshiro256 rng(spec.seed);
  for (std::size_t i = 0; i < spec.rates.size(); ++i) {
    const double jitter = spec.start_jitter_s > 0.0
                              ? rng.next_double() * spec.start_jitter_s
                              : 0.0;
    if (spec.rates[i] > 0.0) free_at[i] = spec.clock_origin_s + jitter;
  }

  double finish = spec.clock_origin_s;
  while (true) {
    // Earliest requester wins; ties break on the lowest PE id, so the
    // grant order is a pure function of (spec, seed).
    int pe = -1;
    for (std::size_t i = 0; i < free_at.size(); ++i)
      if (free_at[i] < kNever &&
          (pe < 0 || free_at[i] < free_at[static_cast<std::size_t>(pe)]))
        pe = static_cast<int>(i);
    if (pe < 0) break;

    const Range chunk = scheduler.next(pe, acps[static_cast<std::size_t>(pe)]);
    if (chunk.empty()) {
      free_at[static_cast<std::size_t>(pe)] = kNever;
      continue;
    }
    const double service =
        static_cast<double>(chunk.size()) /
            spec.rates[static_cast<std::size_t>(pe)] +
        spec.overhead_s;
    free_at[static_cast<std::size_t>(pe)] += service;
    out.pe_busy_s[static_cast<std::size_t>(pe)] += service;
    finish = std::max(finish, free_at[static_cast<std::size_t>(pe)]);
    ++out.chunks;
  }

  out.finish_s = finish;
  out.makespan_s = finish - spec.clock_origin_s;
  return out;
}

}  // namespace lss::sim
