// Simulation configuration: cluster + loads + scheme + workload +
// protocol constants.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lss/cluster/acp.hpp"
#include "lss/cluster/cluster.hpp"
#include "lss/cluster/load.hpp"
#include "lss/workload/workload.hpp"

namespace lss::sim {

enum class SchedulerKind {
  Simple,        ///< §2 schemes — power-oblivious master
  Distributed,   ///< §3/§6 schemes — ACP-aware master
  Tree,          ///< TreeS — partner work migration
  Hierarchical,  ///< extension: two-level master / group masters
};

struct SchedulerConfig {
  SchedulerKind kind = SchedulerKind::Simple;
  /// Scheme spec for the simple/distributed factories ("tss",
  /// "dfiss:sigma=3", ...). Ignored for Tree.
  std::string spec = "tss";
  /// Tree only: initial allocation proportional to virtual power
  /// (the "distributed" TreeS of §6.1) instead of even.
  bool tree_weighted = false;
  /// Distributed only: enable the step-2c majority-change replanning
  /// (ablation switch; the paper's algorithm has it on).
  bool dist_replanning = true;
  /// Distributed only: serve the gathered initial requests in
  /// decreasing-ACP order (paper step 1a). Off = plain FIFO arrival
  /// order (ablation switch).
  bool sorted_initial_queue = true;
  /// Hierarchical only: the partition of slave ids into groups; each
  /// group's first member hosts its group master. Must cover every
  /// slave exactly once.
  std::vector<std::vector<int>> groups;

  static SchedulerConfig simple(std::string spec_) {
    SchedulerConfig out;
    out.kind = SchedulerKind::Simple;
    out.spec = std::move(spec_);
    return out;
  }
  static SchedulerConfig distributed(std::string spec_) {
    SchedulerConfig out;
    out.kind = SchedulerKind::Distributed;
    out.spec = std::move(spec_);
    return out;
  }
  static SchedulerConfig tree(bool weighted) {
    SchedulerConfig out;
    out.kind = SchedulerKind::Tree;
    out.spec = "trees";
    out.tree_weighted = weighted;
    return out;
  }
  /// Two-level hierarchy: the super master runs DTSS over groups,
  /// each group master runs a DFSS-style local split over its pool.
  static SchedulerConfig hierarchical(std::vector<std::vector<int>> groups_) {
    SchedulerConfig out;
    out.kind = SchedulerKind::Hierarchical;
    out.spec = "hdss";
    out.groups = std::move(groups_);
    return out;
  }

  std::string display_name() const {
    if (kind == SchedulerKind::Tree)
      return tree_weighted ? "trees(weighted)" : "trees";
    if (kind == SchedulerKind::Hierarchical)
      return "hdss(" + std::to_string(groups.size()) + " groups)";
    return spec;
  }
};

struct ProtocolConfig {
  double request_bytes = 64.0;  ///< work request / ACP report
  double reply_bytes = 64.0;    ///< chunk assignment
  /// Result payload produced per iteration (Mandelbrot column of
  /// `height` pixels at 4 bytes each -> 8 kB for the 4000x2000 run).
  double bytes_per_iter = 8000.0;
  /// Master service time per request (scheduling + syscall cost).
  double master_overhead_s = 1e-3;
  /// Piggy-back results on the next request (§5). When false, slaves
  /// hold results and send everything after the last chunk — the
  /// end-collection variant the paper measured as clearly worse.
  bool piggyback = true;
  /// Unavailable slaves (A_i = 0) re-check their run queue at this
  /// period (paper Slave step 1 loop).
  double poll_interval_s = 0.25;
  /// TreeS: period of the slave -> coordinator result reports.
  double tree_report_interval_s = 2.0;
};

/// Fail-stop fault injection (extension beyond the paper): slave s
/// halts permanently at crash_at_s[s] (simulated seconds; infinity =
/// never). A crashed slave stops computing and communicating; its
/// unacknowledged chunk is reassigned by the master after
/// `master_timeout_s` of silence. Requires piggy-backed results
/// (results acknowledge the previous chunk) and the centralized
/// protocol.
struct FaultPlan {
  std::vector<double> crash_at_s;  ///< empty = no faults
  double master_timeout_s = 4.0;   ///< silence before declaring death
  /// Alive slaves ping the master at this period so long chunks are
  /// not mistaken for death; <= 0 selects master_timeout_s / 3.
  double heartbeat_interval_s = 0.0;

  bool any() const { return !crash_at_s.empty(); }
  double heartbeat_period() const {
    return heartbeat_interval_s > 0.0 ? heartbeat_interval_s
                                      : master_timeout_s / 3.0;
  }
};

struct SimConfig {
  cluster::ClusterSpec cluster;
  /// Per-slave external load; empty = dedicated run.
  cluster::LoadScripts loads;
  /// Fail-stop crash schedule; empty = reliable slaves.
  FaultPlan faults;
  SchedulerConfig scheduler;
  std::shared_ptr<const Workload> workload;
  cluster::AcpPolicy acp = cluster::AcpPolicy::improved();
  ProtocolConfig protocol;
  /// Master NIC (the paper's master was on the 100 Mbit segment).
  double master_bandwidth_bps = 100e6 / 8.0;
  double master_latency_s = 1e-3;
  /// OS-noise model for replicated experiments: each slave's first
  /// request is delayed by Uniform(0, start_jitter_s) drawn from
  /// `jitter_seed`. 0 = the default fully synchronized start.
  double start_jitter_s = 0.0;
  std::uint64_t jitter_seed = 1;
};

}  // namespace lss::sim
