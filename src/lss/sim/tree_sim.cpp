#include "lss/sim/tree_sim.hpp"

#include <algorithm>

#include "lss/support/assert.hpp"
#include "lss/support/prng.hpp"

namespace lss::sim {

TreeSim::TreeSim(const SimConfig& config)
    : config_(config),
      network_(config.cluster, config.master_bandwidth_bps,
               config.master_latency_s),
      tree_(config.cluster.num_slaves()) {
  LSS_REQUIRE(config.workload != nullptr, "simulation needs a workload");
  LSS_REQUIRE(config.scheduler.kind == SchedulerKind::Tree,
              "TreeSim only runs the TreeS scheme");
  LSS_REQUIRE(config.loads.empty() ||
                  static_cast<int>(config.loads.size()) ==
                      config.cluster.num_slaves(),
              "need one load script per slave (or none)");
  LSS_REQUIRE(!config.faults.any(),
              "fault injection is centralized-only for now");

  const int p = config.cluster.num_slaves();
  weights_ = config.scheduler.tree_weighted
                 ? config.cluster.virtual_powers()
                 : std::vector<double>(static_cast<std::size_t>(p), 1.0);

  slaves_.reserve(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) {
    cluster::LoadScript load =
        config.loads.empty() ? cluster::LoadScript::none()
                             : config.loads[static_cast<std::size_t>(s)];
    slaves_.emplace_back(config.cluster.slave(s).speed, std::move(load));
  }

  const Index total = config.workload->size();
  cost_prefix_.resize(static_cast<std::size_t>(total) + 1, 0.0);
  for (Index i = 0; i < total; ++i)
    cost_prefix_[static_cast<std::size_t>(i) + 1] =
        cost_prefix_[static_cast<std::size_t>(i)] + config.workload->cost(i);
  execution_count_.assign(static_cast<std::size_t>(total), 0);
}

Report TreeSim::run() {
  const Index total = config_.workload->size();
  const auto ranges = treesched::initial_allocation(total, weights_);
  Xoshiro256 jitter_rng(config_.jitter_seed);
  for (int s = 0; s < config_.cluster.num_slaves(); ++s) {
    const double delay =
        config_.start_jitter_s > 0.0
            ? jitter_rng.next_double() * config_.start_jitter_s
            : 0.0;
    const Range r = ranges[static_cast<std::size_t>(s)];
    if (delay > 0.0)
      engine_.schedule_at(delay, [this, s, r] { deliver_initial(s, r); });
    else
      deliver_initial(s, r);
    schedule_report_tick(s);
  }
  if (total == 0) {
    // Degenerate loop: nothing will ever be reported; terminate now.
    master_on_report(0);
  }
  engine_.run();

  Report out;
  out.scheme = config_.scheduler.display_name();
  out.t_parallel = engine_.now();
  out.master_messages = master_messages_;
  out.master_rx_bytes = master_rx_bytes_;
  out.execution_count = execution_count_;
  out.slaves.reserve(slaves_.size());
  for (SlaveState& st : slaves_) {
    st.times.t_wait += out.t_parallel - st.finish;  // terminal barrier
    SlaveStats stats;
    stats.times = st.times;
    stats.finish_time = st.finish;
    stats.iterations = st.iterations;
    stats.chunks = st.chunks;
    out.slaves.push_back(stats);
    out.total_iterations += st.iterations;
  }
  return out;
}

void TreeSim::deliver_initial(int s, Range range) {
  const Transfer tr =
      network_.to_slave(s, config_.protocol.reply_bytes, engine_.now());
  slaves_[static_cast<std::size_t>(s)].times.t_com += tr.busy;
  engine_.schedule_at(tr.arrival, [this, s, range] {
    on_work_arrive(s, {range});
  });
}

void TreeSim::end_idle(int s) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  if (!st.idle) return;
  st.idle = false;
  const double span = engine_.now() - st.idle_since;
  st.times.t_wait += std::max(0.0, span - st.com_while_idle);
  st.com_while_idle = 0.0;
}

void TreeSim::on_work_arrive(int s, std::vector<Range> ranges) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  if (st.terminated) return;
  bool got_any = false;
  for (const Range& r : ranges) {
    if (!r.empty()) got_any = true;
    st.pool.add(r);
  }
  if (got_any) ++st.chunks;
  end_idle(s);
  if (!st.computing) start_compute(s);
}

void TreeSim::start_compute(int s) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  if (st.terminated || st.start_pending) return;
  if (st.pool.empty()) {
    become_idle(s);
    return;
  }
  // Blocking result send in flight (mpich semantics): the slave may
  // not compute until its report has been delivered. This is the
  // TreeS contention the paper's §5 describes.
  if (engine_.now() < st.blocked_until) {
    st.start_pending = true;
    engine_.schedule_at(st.blocked_until, [this, s] {
      slaves_[static_cast<std::size_t>(s)].start_pending = false;
      start_compute(s);
    });
    return;
  }
  const Index i = st.pool.pop_front();
  const double now = engine_.now();
  const double cost = cost_prefix_[static_cast<std::size_t>(i) + 1] -
                      cost_prefix_[static_cast<std::size_t>(i)];
  const double done = st.cpu.finish_time(now, cost);
  st.computing = true;
  st.times.t_comp += done - now;
  engine_.schedule_at(done, [this, s, i] { on_iter_done(s, i); });
}

void TreeSim::on_iter_done(int s, Index iter) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  st.computing = false;
  ++execution_count_[static_cast<std::size_t>(iter)];
  ++st.iterations;
  ++st.unreported_iters;
  st.unreported_bytes += config_.protocol.bytes_per_iter;
  start_compute(s);
}

void TreeSim::become_idle(int s) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  if (st.idle || st.terminated) return;
  st.idle = true;
  st.idle_since = engine_.now();
  st.com_while_idle = 0.0;
  st.finish = engine_.now();  // provisional; updated if work arrives
  flush_report(s);            // let the coordinator see our progress
  st.round_left = static_cast<int>(tree_.partners_of(s).size());
  try_steal(s);
}

void TreeSim::try_steal(int s) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  if (st.terminated || !st.idle) return;
  if (st.round_left <= 0) {
    // Whole partner list came back empty; back off and retry.
    engine_.schedule_after(config_.protocol.poll_interval_s, [this, s] {
      SlaveState& stt = slaves_[static_cast<std::size_t>(s)];
      if (stt.terminated || !stt.idle) return;
      stt.round_left = static_cast<int>(tree_.partners_of(s).size());
      try_steal(s);
    });
    return;
  }
  const auto& partners = tree_.partners_of(s);
  if (partners.empty()) return;  // p == 1: no one to steal from
  const int victim =
      partners[static_cast<std::size_t>(st.partner_cursor) %
               partners.size()];
  st.partner_cursor =
      (st.partner_cursor + 1) % static_cast<int>(partners.size());
  --st.round_left;

  const Transfer tr = network_.slave_to_slave(
      s, victim, config_.protocol.request_bytes, engine_.now());
  st.times.t_com += tr.busy;
  st.com_while_idle += tr.busy;
  engine_.schedule_at(tr.arrival,
                      [this, victim, s] { on_steal_request(victim, s); });
}

void TreeSim::on_steal_request(int victim, int thief) {
  SlaveState& vst = slaves_[static_cast<std::size_t>(victim)];
  std::vector<Range> donated;
  if (!vst.terminated) {
    const Index amount = treesched::steal_amount(
        vst.pool.remaining(), weights_[static_cast<std::size_t>(thief)],
        weights_[static_cast<std::size_t>(victim)]);
    if (amount > 0) donated = vst.pool.donate_back(amount);
  }
  const Transfer tr = network_.slave_to_slave(
      victim, thief, config_.protocol.reply_bytes, engine_.now());
  vst.times.t_com += tr.busy;
  engine_.schedule_at(tr.arrival, [this, thief, donated] {
    on_steal_reply(thief, donated);
  });
}

void TreeSim::on_steal_reply(int thief, std::vector<Range> ranges) {
  SlaveState& st = slaves_[static_cast<std::size_t>(thief)];
  if (st.terminated) {
    // Termination raced a donation; the victim kept >= 1 iteration so
    // this can only happen with empty hand-offs.
    LSS_ASSERT(ranges.empty(), "work arrived after termination");
    return;
  }
  bool got_any = false;
  for (const Range& r : ranges) got_any = got_any || !r.empty();
  if (got_any) {
    on_work_arrive(thief, std::move(ranges));
    return;
  }
  try_steal(thief);
}

void TreeSim::flush_report(int s) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  if (st.unreported_iters == 0) return;
  const Index count = st.unreported_iters;
  const double bytes = config_.protocol.request_bytes + st.unreported_bytes;
  st.unreported_iters = 0;
  st.unreported_bytes = 0.0;
  const Transfer tr = network_.to_master(s, bytes, engine_.now());
  master_rx_bytes_ += bytes;
  st.times.t_com += tr.busy;
  // Blocking send: the slave cannot proceed until delivery.
  st.blocked_until = std::max(st.blocked_until, tr.arrival);
  if (st.idle) st.com_while_idle += tr.busy;
  if (tr.arrival > st.finish && st.idle) st.finish = tr.arrival;
  engine_.schedule_at(tr.arrival, [this, count] {
    ++master_messages_;
    master_on_report(count);
  });
}

void TreeSim::schedule_report_tick(int s) {
  engine_.schedule_after(config_.protocol.tree_report_interval_s,
                         [this, s] {
    SlaveState& st = slaves_[static_cast<std::size_t>(s)];
    if (st.terminated) return;
    flush_report(s);
    schedule_report_tick(s);
  });
}

void TreeSim::master_on_report(Index count) {
  reported_total_ += count;
  LSS_ASSERT(reported_total_ <= config_.workload->size(),
             "more iterations reported than exist");
  if (terminate_sent_ || reported_total_ < config_.workload->size()) return;
  terminate_sent_ = true;
  for (int s = 0; s < config_.cluster.num_slaves(); ++s) {
    const Transfer tr =
        network_.to_slave(s, config_.protocol.reply_bytes, engine_.now());
    engine_.schedule_at(tr.arrival, [this, s] {
      SlaveState& st = slaves_[static_cast<std::size_t>(s)];
      if (st.terminated) return;
      end_idle(s);
      st.terminated = true;
      st.finish = engine_.now();
    });
  }
}

}  // namespace lss::sim
