#include "lss/sim/centralized.hpp"

#include <algorithm>

#include "lss/api/scheduler.hpp"
#include "lss/obs/trace.hpp"
#include "lss/support/assert.hpp"
#include "lss/support/prng.hpp"

namespace lss::sim {

CentralizedSim::CentralizedSim(const SimConfig& config)
    : config_(config),
      network_(config.cluster, config.master_bandwidth_bps,
               config.master_latency_s) {
  LSS_REQUIRE(config.workload != nullptr, "simulation needs a workload");
  LSS_REQUIRE(config.cluster.num_slaves() >= 1, "need at least one slave");
  LSS_REQUIRE(config.loads.empty() ||
                  static_cast<int>(config.loads.size()) ==
                      config.cluster.num_slaves(),
              "need one load script per slave (or none)");
  LSS_REQUIRE(config.scheduler.kind != SchedulerKind::Tree,
              "TreeS uses TreeSim, not CentralizedSim");

  const int p = config.cluster.num_slaves();
  const Index total = config.workload->size();

  slaves_.reserve(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) {
    cluster::LoadScript load =
        config.loads.empty() ? cluster::LoadScript::none()
                             : config.loads[static_cast<std::size_t>(s)];
    slaves_.emplace_back(config.cluster.slave(s).speed, std::move(load));
  }

  cost_prefix_.resize(static_cast<std::size_t>(total) + 1, 0.0);
  for (Index i = 0; i < total; ++i)
    cost_prefix_[static_cast<std::size_t>(i) + 1] =
        cost_prefix_[static_cast<std::size_t>(i)] + config.workload->cost(i);
  execution_count_.assign(static_cast<std::size_t>(total), 0);
  acknowledged_count_.assign(static_cast<std::size_t>(total), 0);

  if (config.faults.any()) {
    LSS_REQUIRE(static_cast<int>(config.faults.crash_at_s.size()) == p,
                "need one crash time per slave (or none)");
    LSS_REQUIRE(config.faults.master_timeout_s > 0.0,
                "master timeout must be positive");
    LSS_REQUIRE(config.protocol.piggyback,
                "fault tolerance requires piggy-backed results "
                "(acknowledgements ride on requests)");
    for (double t : config.faults.crash_at_s)
      LSS_REQUIRE(t > 0.0, "crash times must be positive");
  }

  if (distributed()) {
    dist_ =
        lss::make_distributed_scheduler(config.scheduler.spec, total, p);
    dist_->set_replanning(config.scheduler.dist_replanning);
    gather_acps_.assign(static_cast<std::size_t>(p), 0.0);
    gather_pending_ = p;
  } else {
    simple_ = lss::make_simple_scheduler(config.scheduler.spec, total, p);
  }
}

double CentralizedSim::chunk_cost(Range r) const {
  return cost_prefix_[static_cast<std::size_t>(r.end)] -
         cost_prefix_[static_cast<std::size_t>(r.begin)];
}

Report CentralizedSim::run() {
  // OS-noise model: each slave's first request is jittered.
  Xoshiro256 jitter_rng(config_.jitter_seed);
  for (int s = 0; s < config_.cluster.num_slaves(); ++s) {
    const double delay =
        config_.start_jitter_s > 0.0
            ? jitter_rng.next_double() * config_.start_jitter_s
            : 0.0;
    if (delay > 0.0)
      engine_.schedule_at(delay, [this, s] { slave_begin(s); });
    else
      slave_begin(s);
  }
  if (config_.faults.any()) {
    schedule_crashes();
    schedule_timeout_scan();
    for (int s = 0; s < config_.cluster.num_slaves(); ++s)
      schedule_heartbeat(s);
  }
  engine_.run();

  Report out;
  out.scheme = distributed() ? dist_->name() : simple_->name();
  out.starved = starved_;
  // The run ends at the last slave activity; engine_.now() may sit
  // on a later no-op event (e.g. a crash scheduled past completion).
  double t_end = 0.0;
  for (const SlaveState& st : slaves_) t_end = std::max(t_end, st.finish);
  out.t_parallel = starved_ ? engine_.now() : t_end;
  out.master_messages = master_messages_;
  out.replans = distributed() ? dist_->replans() : 0;
  out.execution_count = execution_count_;
  out.acknowledged_count = acknowledged_count_;
  out.reassignments = reassignments_;
  out.master_rx_bytes = master_rx_bytes_;
  out.trace = trace_;
  out.slaves.reserve(slaves_.size());
  for (SlaveState& st : slaves_) {
    // Terminal barrier: a slave that finished early idles until the
    // whole run ends (mpich finalize semantics; see DESIGN.md).
    // Crashed slaves stop accruing anything at their crash time.
    if (!starved_ && !st.crashed)
      st.times.t_wait += out.t_parallel - st.finish;
    SlaveStats stats;
    stats.times = st.times;
    stats.finish_time = st.finish;
    stats.iterations = st.iterations;
    stats.chunks = st.chunks;
    stats.crashed = st.crashed;
    out.slaves.push_back(stats);
    out.total_iterations += st.iterations;
  }
  return out;
}

// ------------------------------------------------- fault tolerance

void CentralizedSim::schedule_crashes() {
  for (int s = 0; s < config_.cluster.num_slaves(); ++s) {
    const double at =
        config_.faults.crash_at_s[static_cast<std::size_t>(s)];
    if (!(at < std::numeric_limits<double>::infinity())) continue;
    engine_.schedule_at(at, [this, s] {
      SlaveState& st = slaves_[static_cast<std::size_t>(s)];
      if (st.terminated) return;  // finished before the fault fired
      st.crashed = true;
      st.finish = engine_.now();
      obs::emit_at(engine_.now(), obs::EventKind::Fault, s);
    });
  }
}

void CentralizedSim::schedule_heartbeat(int s) {
  engine_.schedule_after(config_.faults.heartbeat_period(), [this, s] {
    SlaveState& st = slaves_[static_cast<std::size_t>(s)];
    if (st.crashed || st.terminated) return;  // silence is death
    const Transfer tr = network_.to_master(
        s, config_.protocol.request_bytes, engine_.now());
    master_rx_bytes_ += config_.protocol.request_bytes;
    st.times.t_com += tr.busy;
    engine_.schedule_at(tr.arrival, [this, s] {
      slaves_[static_cast<std::size_t>(s)].last_heard = engine_.now();
    });
    schedule_heartbeat(s);
  });
}

void CentralizedSim::schedule_timeout_scan() {
  engine_.schedule_after(config_.faults.master_timeout_s / 2.0, [this] {
    if (starved_ || acked_total_ >= config_.workload->size()) return;
    const double now = engine_.now();
    for (int s = 0; s < config_.cluster.num_slaves(); ++s) {
      SlaveState& st = slaves_[static_cast<std::size_t>(s)];
      if (st.outstanding.empty()) continue;
      // Exponential backoff per chunk: a chunk that was already
      // reassigned gets progressively more patience, so a timeout
      // below the true chunk latency cannot bounce it forever.
      const double patience =
          config_.faults.master_timeout_s *
          static_cast<double>(1 << std::min(st.outstanding_attempts, 10));
      if (now - st.last_heard <= patience) continue;
      // Declare the slave dead and put its chunk back in play. If
      // the slave is merely slow, its late results are discarded on
      // arrival (outstanding already cleared) — at-most-once acks.
      reassign_pool_.push_back(
          PoolEntry{st.outstanding, st.outstanding_attempts + 1});
      st.outstanding = Range{};
      st.outstanding_attempts = 0;
      ++reassignments_;
    }
    if (!reassign_pool_.empty() && !parked_.empty()) {
      for (Request& rq : parked_) queue_.push_back(rq);
      parked_.clear();
      master_try_serve();
    }
    schedule_timeout_scan();
  });
}

void CentralizedSim::acknowledge_outstanding(int s) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  if (st.outstanding.empty()) return;
  for (Index i = st.outstanding.begin; i < st.outstanding.end; ++i)
    ++acknowledged_count_[static_cast<std::size_t>(i)];
  acked_total_ += st.outstanding.size();
  st.outstanding = Range{};
  maybe_release_parked();
}

void CentralizedSim::maybe_release_parked() {
  if (parked_.empty() || !reassign_pool_.empty()) return;
  const bool scheduler_done = distributed()
                                  ? (dist_->initialized() && dist_->done())
                                  : simple_->done();
  if (!scheduler_done) return;
  // Terminate parked requesters only when nothing can come back to
  // the pool: no chunk is outstanding anywhere.
  for (const SlaveState& st : slaves_)
    if (!st.outstanding.empty()) return;
  for (Request& rq : parked_) queue_.push_back(rq);
  parked_.clear();
  master_try_serve();
}

// --------------------------------------------------------------- slaves

void CentralizedSim::slave_begin(int s) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  st.ready_at = engine_.now();
  if (!distributed()) {
    slave_send_request(s);
    return;
  }
  // Distributed: every slave reports its initial A_i (possibly 0);
  // unavailable slaves then poll their run queue (Slave step 1).
  st.acp = st.cpu.acp_at(engine_.now(),
                         config_.cluster.slave(s).virtual_power,
                         config_.acp);
  slave_send_request(s);
}

void CentralizedSim::slave_poll_until_available(int s) {
  engine_.schedule_after(config_.protocol.poll_interval_s, [this, s] {
    SlaveState& st = slaves_[static_cast<std::size_t>(s)];
    if (st.terminated || st.crashed) return;
    if (dist_ != nullptr && dist_->initialized() && dist_->done()) {
      // Nothing left to request; stop polling so the run can end.
      st.terminated = true;
      st.times.t_wait += engine_.now() - st.ready_at;
      st.ready_at = st.finish = engine_.now();
      return;
    }
    st.acp = st.cpu.acp_at(engine_.now(),
                           config_.cluster.slave(s).virtual_power,
                           config_.acp);
    if (st.acp > 0.0)
      slave_send_request(s);
    else
      slave_poll_until_available(s);
  });
}

void CentralizedSim::slave_send_request(int s) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  const double now = engine_.now();
  // Idle time since the previous chunk completed (e.g. polling).
  st.times.t_wait += now - st.ready_at;
  st.ready_at = now;
  st.request_sent_at = now;

  const double bytes = config_.protocol.request_bytes + st.carried_bytes;
  st.carried_bytes = 0.0;
  obs::emit_at(now, obs::EventKind::MsgSend, s, {}, /*tag=*/0,
               static_cast<std::int64_t>(bytes));
  const Transfer tr = network_.to_master(s, bytes, now);
  master_rx_bytes_ += bytes;
  st.request_busy = tr.busy;
  Request rq;
  rq.slave = s;
  rq.acp = st.acp;
  rq.fb_iters = st.fb_iters;
  rq.fb_seconds = st.fb_seconds;
  st.fb_iters = 0;
  st.fb_seconds = 0.0;
  engine_.schedule_at(tr.arrival, [this, rq] {
    master_on_arrival(rq.slave, rq);
  });
}

void CentralizedSim::slave_on_reply(int s, Range chunk, double reply_busy,
                                    std::size_t trace_id) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  if (st.crashed) return;  // reply to a dead slave: chunk times out
  const double now = engine_.now();
  // The request/reply round trip: wire time is communication, the
  // rest (link queueing, master queueing and service) is waiting.
  const double round_trip = now - st.request_sent_at;
  const double com = st.request_busy + reply_busy;
  st.times.t_com += com;
  st.times.t_wait += std::max(0.0, round_trip - com);

  if (chunk.empty()) {
    st.terminated = true;
    if (!config_.protocol.piggyback && st.stored_bytes > 0.0) {
      // End-collection mode: ship all stored results now. Everybody
      // doing this at once is the contention §5 observed.
      master_rx_bytes_ += st.stored_bytes;
      const Transfer tr = network_.to_master(s, st.stored_bytes, now);
      st.times.t_com += tr.busy;
      st.times.t_wait += tr.wait(now);
      st.stored_bytes = 0.0;
      st.finish = tr.arrival;
      engine_.schedule_at(tr.arrival, [this] { ++master_messages_; });
    } else {
      st.finish = now;
    }
    st.ready_at = st.finish;
    return;
  }

  trace_[trace_id].started_at = now;
  obs::emit_at(now, obs::EventKind::ChunkStarted, s, chunk);
  const double done_at = st.cpu.finish_time(now, chunk_cost(chunk));
  st.times.t_comp += done_at - now;
  // Measured execution feedback, piggy-backed on the next request
  // (consumed by rate-adaptive schemes such as AWF).
  st.fb_iters = chunk.size();
  st.fb_seconds = done_at - now;
  engine_.schedule_at(done_at, [this, s, chunk, trace_id] {
    slave_on_compute_done(s, chunk, trace_id);
  });
}

void CentralizedSim::slave_on_compute_done(int s, Range chunk,
                                           std::size_t trace_id) {
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  if (st.crashed) return;  // died mid-computation; results lost
  trace_[trace_id].completed_at = engine_.now();
  obs::emit_at(engine_.now(), obs::EventKind::ChunkFinished, s, chunk);
  for (Index i = chunk.begin; i < chunk.end; ++i)
    ++execution_count_[static_cast<std::size_t>(i)];
  st.iterations += chunk.size();
  ++st.chunks;
  const double result_bytes =
      static_cast<double>(chunk.size()) * config_.protocol.bytes_per_iter;
  if (config_.protocol.piggyback)
    st.carried_bytes += result_bytes;
  else
    st.stored_bytes += result_bytes;
  st.ready_at = engine_.now();

  if (distributed()) {
    st.acp = st.cpu.acp_at(engine_.now(),
                           config_.cluster.slave(s).virtual_power,
                           config_.acp);
    if (st.acp <= 0.0) {
      // Slave step 1: the node got overloaded below A_min; poll the
      // run queue until work may be requested again.
      slave_poll_until_available(s);
      return;
    }
  }
  slave_send_request(s);
}

// --------------------------------------------------------------- master

void CentralizedSim::master_on_arrival(int s, Request rq) {
  ++master_messages_;
  obs::emit_at(engine_.now(), obs::EventKind::MsgRecv, obs::kMasterPe, {},
               /*tag=*/0, /*source=*/s);
  SlaveState& st = slaves_[static_cast<std::size_t>(s)];
  st.last_heard = engine_.now();
  // Piggy-backed results acknowledge the previous chunk. If the
  // master already timed this slave out, outstanding is empty and
  // the late results are discarded (the chunk was reassigned).
  if (config_.protocol.piggyback && rq.fb_iters > 0)
    acknowledge_outstanding(s);

  if (distributed() && !gather_done_) {
    // Step 1a: collect the initial A_i of every slave.
    if (!st.reported) {
      st.reported = true;
      gather_acps_[static_cast<std::size_t>(s)] = rq.acp;
      gather_order_.push_back(s);
      if (--gather_pending_ == 0) finish_gather();
      return;
    }
  }
  queue_.push_back(rq);
  master_try_serve();
}

void CentralizedSim::finish_gather() {
  double sum = 0.0;
  for (double a : gather_acps_) sum += a;
  if (sum <= 0.0) {
    // The paper's §5.2 trap: integer ACP floors every A_i to zero and
    // "the solving of the problem will have to wait" — we report the
    // run as starved instead of hanging.
    starved_ = true;
    for (SlaveState& st : slaves_) st.terminated = true;
    return;
  }
  dist_->initialize(gather_acps_);
  gather_done_ = true;

  // Step 1a: queue the initial requests in decreasing-ACP order
  // (unless the ablation switch asks for plain arrival order).
  std::vector<int> order;
  for (int s : gather_order_)
    if (gather_acps_[static_cast<std::size_t>(s)] > 0.0) order.push_back(s);
  if (config_.scheduler.sorted_initial_queue) {
    std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
      return gather_acps_[static_cast<std::size_t>(a)] >
             gather_acps_[static_cast<std::size_t>(b)];
    });
  }
  for (int s : order)
    queue_.push_back(Request{s, gather_acps_[static_cast<std::size_t>(s)]});

  // Unavailable slaves begin polling their run queues.
  for (int s = 0; s < config_.cluster.num_slaves(); ++s)
    if (gather_acps_[static_cast<std::size_t>(s)] <= 0.0)
      slave_poll_until_available(s);

  master_try_serve();
}

void CentralizedSim::master_try_serve() {
  if (serving_ || queue_.empty()) return;
  if (distributed() && !gather_done_) return;
  serving_ = true;
  const Request rq = queue_.front();
  queue_.pop_front();
  engine_.schedule_after(config_.protocol.master_overhead_s,
                         [this, rq] { master_serve(rq); });
}

void CentralizedSim::master_serve(Request rq) {
  if (distributed() && rq.fb_iters > 0)
    dist_->on_feedback(rq.slave, rq.fb_iters, rq.fb_seconds);

  Range chunk;
  int attempts = 0;
  if (!reassign_pool_.empty()) {
    // Re-issue a timed-out chunk before consulting the scheme — but
    // split it across requesters (an even share per PE, at least the
    // scheme's trailing-chunk scale) so one slow PE cannot become
    // the recovery straggler.
    PoolEntry& entry = reassign_pool_.front();
    attempts = entry.attempts;
    const Index share = std::max<Index>(
        1, (entry.range.size() + config_.cluster.num_slaves() - 1) /
               config_.cluster.num_slaves());
    chunk = take_front(entry.range, share);
    if (entry.range.empty()) reassign_pool_.pop_front();
  } else {
    const int replans_before = distributed() ? dist_->replans() : 0;
    chunk = distributed() ? dist_->next(rq.slave, rq.acp)
                          : simple_->next(rq.slave);
    if (distributed() && dist_->replans() != replans_before)
      obs::emit_at(engine_.now(), obs::EventKind::Replan, obs::kMasterPe,
                   {}, dist_->replans());
    const bool scheduler_done =
        distributed() ? dist_->done() : simple_->done();
    if (chunk.empty() && scheduler_done && config_.faults.any()) {
      // Nothing to hand out *yet*, but an outstanding chunk may
      // still time out and need this requester: park it.
      for (const SlaveState& st : slaves_) {
        if (!st.outstanding.empty() &&
            &st != &slaves_[static_cast<std::size_t>(rq.slave)]) {
          parked_.push_back(rq);
          serving_ = false;
          master_try_serve();
          return;
        }
      }
    }
  }
  std::size_t trace_id = trace_.size();
  if (!chunk.empty()) {
    obs::emit_at(engine_.now(), obs::EventKind::ChunkGranted, rq.slave,
                 chunk);
    slaves_[static_cast<std::size_t>(rq.slave)].outstanding = chunk;
    slaves_[static_cast<std::size_t>(rq.slave)].outstanding_attempts =
        attempts;
    ChunkTrace tc;
    tc.slave = rq.slave;
    tc.range = chunk;
    tc.assigned_at = engine_.now();
    tc.reassigned = attempts > 0;
    trace_.push_back(tc);
  }

  const double now = engine_.now();
  const Transfer tr =
      network_.to_slave(rq.slave, config_.protocol.reply_bytes, now);
  const double busy = tr.busy;
  engine_.schedule_at(tr.arrival, [this, rq, chunk, busy, trace_id] {
    slave_on_reply(rq.slave, chunk, busy, trace_id);
  });
  serving_ = false;
  master_try_serve();
}

}  // namespace lss::sim
