#include "lss/sim/engine.hpp"

#include <utility>

#include "lss/support/assert.hpp"

namespace lss::sim {

void Engine::schedule_at(double t, Callback cb) {
  LSS_REQUIRE(t >= now_, "cannot schedule an event in the past");
  LSS_REQUIRE(cb != nullptr, "null event callback");
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Engine::schedule_after(double delay, Callback cb) {
  LSS_REQUIRE(delay >= 0.0, "negative delay");
  schedule_at(now_ + delay, std::move(cb));
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // Copy out before pop so the callback may schedule new events.
  Event ev = queue_.top();
  queue_.pop();
  LSS_ASSERT(ev.t >= now_, "event queue went backwards in time");
  now_ = ev.t;
  ++processed_;
  ev.cb();
  return true;
}

void Engine::run(std::uint64_t max_events) {
  while (step()) {
    LSS_ASSERT(processed_ <= max_events,
               "event budget exhausted — likely a livelock in the model");
  }
}

}  // namespace lss::sim
