// Umbrella header for the lss library — loop self-scheduling for
// heterogeneous clusters (reproduction of Chronopoulos et al.,
// CLUSTER 2001). Include this for everything, or the per-module
// headers for fine-grained dependencies.
#pragma once

// Support
#include "lss/support/assert.hpp"
#include "lss/support/csv.hpp"
#include "lss/support/prng.hpp"
#include "lss/support/stats.hpp"
#include "lss/support/strings.hpp"
#include "lss/support/table.hpp"
#include "lss/support/types.hpp"

// Workloads (§2.1)
#include "lss/workload/file_workload.hpp"
#include "lss/workload/linalg.hpp"
#include "lss/workload/mandelbrot.hpp"
#include "lss/workload/sampling.hpp"
#include "lss/workload/synthetic.hpp"
#include "lss/workload/workload.hpp"

// Simple self-scheduling schemes (§2)
#include "lss/sched/analysis.hpp"
#include "lss/sched/css.hpp"
#include "lss/sched/factory.hpp"
#include "lss/sched/fiss.hpp"
#include "lss/sched/fss.hpp"
#include "lss/sched/gss.hpp"
#include "lss/sched/scheme.hpp"
#include "lss/sched/sequence.hpp"
#include "lss/sched/sss.hpp"
#include "lss/sched/static_sched.hpp"
#include "lss/sched/tfss.hpp"
#include "lss/sched/tss.hpp"
#include "lss/sched/wf.hpp"

// Cluster model (§3)
#include "lss/cluster/acp.hpp"
#include "lss/cluster/cluster.hpp"
#include "lss/cluster/config_file.hpp"
#include "lss/cluster/load.hpp"

// Distributed schemes (§3.1, §5.2, §6)
#include "lss/distsched/acpsa.hpp"
#include "lss/distsched/awf.hpp"
#include "lss/distsched/dfactory.hpp"
#include "lss/distsched/dfiss.hpp"
#include "lss/distsched/dfss.hpp"
#include "lss/distsched/dist_scheme.hpp"
#include "lss/distsched/dtfss.hpp"
#include "lss/distsched/dtss.hpp"
#include "lss/distsched/weighted_adapter.hpp"

// Unified scheduler construction (both families, one registry)
#include "lss/api/desc.hpp"
#include "lss/api/scheduler.hpp"

// Tree Scheduling (§5, §6.1)
#include "lss/treesched/tree.hpp"
#include "lss/treesched/tree_sched.hpp"

// Metrics
#include "lss/metrics/imbalance.hpp"
#include "lss/metrics/speedup.hpp"
#include "lss/metrics/timing.hpp"

// Observability: tracing, counters, exporters
#include "lss/obs/event.hpp"
#include "lss/obs/export.hpp"
#include "lss/obs/metrics_registry.hpp"
#include "lss/obs/run_stats.hpp"
#include "lss/obs/trace.hpp"

// Cluster simulator (§5.1, §6.1 experiments)
#include "lss/sim/config.hpp"
#include "lss/sim/gantt.hpp"
#include "lss/sim/report.hpp"
#include "lss/sim/experiment.hpp"
#include "lss/sim/simulation.hpp"

// Message passing + threaded runtime
#include "lss/mp/collectives.hpp"
#include "lss/mp/comm.hpp"
#include "lss/mp/message.hpp"
#include "lss/rt/affinity.hpp"
#include "lss/rt/dispatch.hpp"
#include "lss/rt/parallel_for.hpp"
#include "lss/rt/run.hpp"
#include "lss/rt/throttle.hpp"
