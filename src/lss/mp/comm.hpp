// In-process communicator: a fixed set of ranks with point-to-point
// tagged messaging. Rank 0 is the master by convention (as in the
// paper's mpich master-slave programs).
//
// Comm is the in-process implementation of mp::Transport — it hosts
// *every* rank of the job in one address space, so any rank argument
// is local. Threads never fail-stop underneath it, hence
// peer_alive() is constantly true and failure detection against a
// Comm relies purely on the master's grant-age deadlines.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "lss/mp/channel.hpp"
#include "lss/mp/message.hpp"
#include "lss/mp/transport.hpp"

namespace lss::mp {

class Comm final : public Transport {
 public:
  explicit Comm(int size);

  int size() const override { return static_cast<int>(boxes_.size()); }
  std::string kind() const override { return "inproc"; }

  /// Deliver `payload` to `to`'s mailbox, stamped with `from`.
  void send(int from, int to, int tag, Buffer payload) override;

  /// Blocking receive into `rank`'s mailbox.
  Message recv(int rank, int source = kAnySource,
               int tag = kAnyTag) override;
  std::optional<Message> recv_for(int rank,
                                  std::chrono::steady_clock::duration timeout,
                                  int source = kAnySource,
                                  int tag = kAnyTag) override;
  std::optional<Message> try_recv(int rank, int source = kAnySource,
                                  int tag = kAnyTag) override;
  /// One-lock multi-pop on the rank's mailbox: the whole ready-set
  /// is claimed atomically even when several threads receive on the
  /// same rank (safe for concurrent drainers, unlike the base
  /// default).
  void drain_into(int rank, std::vector<Message>& out,
                  int source = kAnySource, int tag = kAnyTag) override;
  bool probe(int rank, int source = kAnySource,
             int tag = kAnyTag) const override;

 private:
  const Mailbox& box(int rank) const;
  Mailbox& box(int rank);

  std::vector<std::unique_ptr<Mailbox>> boxes_;
};

}  // namespace lss::mp
