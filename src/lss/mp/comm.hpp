// In-process communicator: a fixed set of ranks with point-to-point
// tagged messaging. Rank 0 is the master by convention (as in the
// paper's mpich master-slave programs).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "lss/mp/channel.hpp"
#include "lss/mp/message.hpp"

namespace lss::mp {

class Comm {
 public:
  explicit Comm(int size);

  int size() const { return static_cast<int>(boxes_.size()); }

  /// Deliver `payload` to `to`'s mailbox, stamped with `from`.
  void send(int from, int to, int tag, std::vector<std::byte> payload);

  /// Blocking receive into `rank`'s mailbox.
  Message recv(int rank, int source = kAnySource, int tag = kAnyTag);
  std::optional<Message> try_recv(int rank, int source = kAnySource,
                                  int tag = kAnyTag);
  bool probe(int rank, int source = kAnySource, int tag = kAnyTag) const;

 private:
  const Mailbox& box(int rank) const;
  Mailbox& box(int rank);

  std::vector<std::unique_ptr<Mailbox>> boxes_;
};

}  // namespace lss::mp
