// Pooled byte buffers for the message data plane.
//
// Every frame the runtime receives used to materialize as a fresh
// std::vector<std::byte> and die a few microseconds later — at shm
// speeds (~1.8 µs/chunk) the allocator round-trip is a first-order
// cost. BufferPool recycles that storage: buffers are handed out by
// power-of-two size class and return to the pool automatically when
// the owning Buffer (and therefore the Message carrying it) is
// destroyed. After warm-up the steady-state message path performs
// zero heap allocations (asserted by tests/test_dataplane.cpp).
//
// ## Ownership rules (DESIGN.md §18)
//
// - `Buffer` is a unique owner. Moving transfers the storage and the
//   pool link; copying makes an *unpooled* deep copy (copies are the
//   slow path by construction, so they never steal pooled storage).
// - A plain std::vector<std::byte> converts implicitly into an
//   unpooled Buffer, which keeps every legacy `send(..., vector)`
//   call site compiling unchanged; unpooled buffers free normally.
// - `take()` detaches the bytes as a plain vector for callers that
//   must own them beyond the message (collectives); the storage
//   leaves the pool's economy at that point.
// - The pool is process-global (`BufferPool::global()`): buffers may
//   outlive the transport that filled them, so per-endpoint pools
//   would dangle. Releasing into a full class ring simply frees —
//   the pool bounds its own footprint.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace lss::mp {

class BufferPool;

/// A byte buffer that returns its storage to a BufferPool on
/// destruction (when pool-acquired; plain-vector buffers just free).
class Buffer {
 public:
  Buffer() = default;
  /// Implicit on purpose: legacy call sites hand plain vectors to
  /// send(); they become unpooled buffers with identical semantics.
  Buffer(std::vector<std::byte> v) : buf_(std::move(v)) {}  // NOLINT

  Buffer(const Buffer& o) : buf_(o.buf_) {}  // deep copy, unpooled
  Buffer& operator=(const Buffer& o) {
    if (this != &o) {
      release();
      buf_ = o.buf_;
    }
    return *this;
  }
  Buffer(Buffer&& o) noexcept : buf_(std::move(o.buf_)), pool_(o.pool_) {
    o.buf_.clear();
    o.pool_ = nullptr;
  }
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      release();
      buf_ = std::move(o.buf_);
      pool_ = o.pool_;
      o.buf_.clear();
      o.pool_ = nullptr;
    }
    return *this;
  }
  ~Buffer() { release(); }

  const std::byte* data() const { return buf_.data(); }
  std::byte* data() { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  const std::byte* begin() const { return buf_.data(); }
  const std::byte* end() const { return buf_.data() + buf_.size(); }

  std::span<const std::byte> view() const { return {buf_.data(), buf_.size()}; }
  operator std::span<const std::byte>() const { return view(); }  // NOLINT

  /// Detaches the bytes as a plain vector (the storage permanently
  /// leaves the pool). For callers that outlive the message.
  std::vector<std::byte> take() {
    pool_ = nullptr;
    return std::move(buf_);
  }

  /// Mutable access to the underlying storage, for writers that
  /// build a payload in place (PayloadWriter's external-buffer mode)
  /// and recv paths that fill a pooled buffer.
  std::vector<std::byte>& storage() { return buf_; }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.buf_ == b.buf_;
  }
  friend bool operator==(const Buffer& a, const std::vector<std::byte>& b) {
    return a.buf_ == b;
  }

 private:
  friend class BufferPool;
  void release();

  std::vector<std::byte> buf_;
  BufferPool* pool_ = nullptr;
};

/// Lock-free size-classed free list of byte vectors. Classes are
/// powers of two from 64 B to 16 MiB (the frame payload cap); each
/// class is a bounded MPMC ring (Vyukov), so acquire/release are a
/// couple of CAS-free atomic ops from any thread.
class BufferPool {
 public:
  /// `ring_slots` is the per-class capacity (rounded up to a power
  /// of two); releases beyond it fall back to freeing.
  explicit BufferPool(std::size_t ring_slots = 64);
  ~BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// The process-wide pool every transport and hot path shares.
  static BufferPool& global();

  /// An empty (size 0) buffer with capacity >= `n`, recycled when a
  /// same-class buffer is available, freshly reserved otherwise.
  /// Requests beyond the largest class return an unpooled buffer.
  Buffer acquire(std::size_t n);

  /// Returns storage to the class its capacity fits (Buffer calls
  /// this from its destructor; storage too small or beyond the
  /// largest class, or arriving at a full ring, is freed).
  void release(std::vector<std::byte> v);

  /// Buffers currently parked across all classes (observability).
  std::size_t parked() const;

  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr int kNumClasses = 19;  // 64 B .. 16 MiB
  static constexpr std::size_t class_bytes(int c) {
    return kMinClassBytes << c;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    std::vector<std::byte> item;
  };
  struct ClassRing {
    std::unique_ptr<Cell[]> cells;
    std::size_t mask = 0;
    alignas(64) std::atomic<std::size_t> enqueue_pos{0};
    alignas(64) std::atomic<std::size_t> dequeue_pos{0};

    bool push(std::vector<std::byte>& v);
    bool pop(std::vector<std::byte>& v);
  };

  ClassRing classes_[kNumClasses];
};

inline void Buffer::release() {
  if (pool_ != nullptr) {
    BufferPool* p = pool_;
    pool_ = nullptr;
    p->release(std::move(buf_));
    buf_.clear();
  }
}

}  // namespace lss::mp
