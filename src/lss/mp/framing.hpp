// Wire framing for the socket transport: one message = a fixed
// 12-byte header followed by the payload.
//
//   offset 0  u32  payload length in bytes (little-endian)
//   offset 4  i32  tag
//   offset 8  i32  source rank
//   offset 12 ...  payload
//
// Fixed-width little-endian fields, matching the PayloadWriter /
// PayloadReader convention the payloads themselves use. The length
// field is bounded (kMaxFramePayload) so a corrupt or malicious
// header cannot make the receiver allocate gigabytes; a frame
// claiming more is a protocol error, not a big message.
//
// FrameDecoder is a push parser: feed() it whatever the socket
// returned — a byte, half a header, three frames and a tail — and
// pop complete messages with next(). This is what makes short reads
// on a stream socket a non-event. Decoded payloads land in pooled
// Buffers (mp::BufferPool), so the steady-state recv path recycles
// storage instead of allocating per frame.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lss/mp/message.hpp"
#include "lss/support/ring_fifo.hpp"

namespace lss::mp {

inline constexpr std::size_t kFrameHeaderBytes = 12;

/// Upper bound on a frame's payload (16 MiB). Large enough for any
/// chunk-result blob the runtime ships, small enough that a garbage
/// length field is rejected instead of honored.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// Writes the 12-byte frame header into `out`. Scatter-gather send
/// paths (writev, in-ring reserve/commit) build the header on the
/// stack and ship it alongside payload spans — the frame is never
/// assembled contiguously in memory.
void encode_frame_header(std::byte (&out)[kFrameHeaderBytes], int source,
                         int tag, std::uint32_t payload_len);

/// Parses the 12-byte header at `hdr` (no bounds check — the caller
/// guarantees kFrameHeaderBytes are present).
void decode_frame_header(const std::byte* hdr, std::uint32_t& payload_len,
                         int& tag, int& source);

/// Serializes one frame (header + payload) ready for the wire.
/// Throws lss::ContractError if payload exceeds `max_payload`.
std::vector<std::byte> encode_frame(
    int source, int tag, std::span<const std::byte> payload,
    std::uint32_t max_payload = kMaxFramePayload);

/// Same, but serializes into `out` (cleared, capacity kept). Send
/// paths that own a per-connection scratch buffer encode every frame
/// into it instead of allocating a fresh vector per message — after
/// the first few sends the buffer has grown to the connection's
/// high-water frame size and encoding is pure byte copying.
void encode_frame_into(std::vector<std::byte>& out, int source, int tag,
                       std::span<const std::byte> payload,
                       std::uint32_t max_payload = kMaxFramePayload);

class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_payload = kMaxFramePayload);

  /// Appends `n` raw bytes from the stream; complete frames become
  /// available via next(). Throws lss::ContractError when a header
  /// announces a payload larger than `max_payload` — the connection
  /// is unrecoverable after that (framing is lost) and must be
  /// closed by the caller.
  void feed(const std::byte* data, std::size_t n);

  /// Earliest fully received message, FIFO; nullopt when none.
  std::optional<Message> next();

  /// Bytes of the partially received frame still waiting for more
  /// input (0 when the stream sits on a frame boundary).
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::uint32_t max_payload_;
  std::vector<std::byte> buf_;
  RingFifo<Message> ready_;
};

}  // namespace lss::mp
