// Shared-memory plumbing of the shm transport (DESIGN.md §17): a
// POSIX shm segment holding two SPSC byte rings per worker plus the
// futex doorbells that replace poll(2) as the wakeup primitive.
//
// The segment is the shm sibling of the TCP star: the master creates
// it (O_CREAT|O_EXCL, mirroring ShmTicketCounter's lifecycle), each
// worker attaches by name and claims a slot with one fetch_add —
// that slot index *is* the worker's rank - 1, so rank assignment
// needs no handshake frames at all. Rings carry the ordinary wire
// frames (mp/framing.hpp) as a byte stream: a frame larger than the
// ring streams through in pieces and the consumer's FrameDecoder
// reassembles it, exactly like short reads on a stream socket.
//
// Wakeups are eventcounts over shared futex words (Doorbell): the
// producer publishes bytes, bumps the consumer's doorbell sequence,
// and issues the futex syscall only when the consumer has declared
// itself parked — the uncontended fast path is two atomic ops and
// zero syscalls. Waiters spin on sched_yield() a bounded number of
// rounds before parking; on a single-CPU box the yield *is* the
// context switch to the producer, so the futex round trip (and its
// wake syscall on the far side) is skipped entirely — the same
// single-core reasoning as MasterConfig::poll_spin.
//
// Ownership rules (the hygiene contract):
//   * the creator is the owner: its destructor marks the segment
//     closed, wakes every parked peer, and shm_unlink()s the name;
//   * every owned name is also registered with the process-wide
//     cleanup registry (shm_register_owned), whose atexit and
//     SIGINT/SIGTERM/SIGHUP handlers unlink leftovers — a killed
//     master must not leak /dev/shm segments;
//   * attachers just munmap; they detect a *dead* owner by pid
//     (ShmAttachError with dead_owner() == true) instead of hanging
//     on a doorbell nobody will ever ring again.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lss/support/assert.hpp"

namespace lss::mp {

/// Typed failure of ShmSegment::attach — distinguishes "segment
/// missing/malformed" and, via dead_owner(), "segment exists but its
/// creator died without unlinking" (the case that would otherwise
/// hang the attacher forever).
class ShmAttachError : public ContractError {
 public:
  ShmAttachError(const std::string& what, bool dead_owner)
      : ContractError(what), dead_owner_(dead_owner) {}
  bool dead_owner() const { return dead_owner_; }

 private:
  bool dead_owner_;
};

// ---------------------------------------------------------------------------
// Owned-segment cleanup registry (atexit + fatal-signal unlink).

/// Registers a shm name owned by this process: it will be
/// shm_unlink()ed from atexit and from SIGINT/SIGTERM/SIGHUP if the
/// owner never reaches its destructor. Install-once, async-signal-
/// safe (fixed slots, no allocation in the handler path).
void shm_register_owned(const std::string& name);

/// Removes a name after the owner unlinked it normally.
void shm_unregister_owned(const std::string& name);

// ---------------------------------------------------------------------------
// Futex eventcount.

/// A shared-memory eventcount: `seq` is the futex word, `waiting`
/// announces a parked consumer so producers only pay the wake
/// syscall when someone is actually asleep. Lives inside the mapped
/// segment; one waiter, any number of notifiers.
struct Doorbell {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint32_t> waiting{0};
};

/// Notifier side: bump the sequence, wake the waiter iff parked.
void doorbell_ring(Doorbell& bell);

/// Waiter side: returns the sequence to pass to doorbell_wait().
/// Read *before* re-checking the guarded condition, or a ring
/// between the check and the wait is missed until the next timeout.
std::uint32_t doorbell_peek(const Doorbell& bell);

/// Blocks until the sequence moves past `seen` or `timeout` elapses;
/// spins `yield_spins` sched_yield() rounds before parking in futex.
/// Returns true when the bell rang (false = timeout).
bool doorbell_wait(Doorbell& bell, std::uint32_t seen,
                   std::chrono::milliseconds timeout, int yield_spins);

/// Auto spin policy: a single-CPU box parks immediately after a few
/// yields (spinning steals the only core from the producer); a
/// multicore box affords more yield rounds before the futex.
int default_yield_spins();

// ---------------------------------------------------------------------------
// SPSC byte ring.

/// In-segment ring state. `tail` is the producer cursor, `head` the
/// consumer cursor (both monotone byte counts; index = cursor mod
/// capacity). `space` is rung by the consumer whenever head
/// advances, so a producer blocked on a full ring can park on it.
/// Data-arrival notification is *not* here: each endpoint owns one
/// doorbell covering all its inbound rings (the master would
/// otherwise need one futex wait per worker).
struct ShmRingHdr {
  alignas(64) std::atomic<std::uint64_t> tail{0};
  alignas(64) std::atomic<std::uint64_t> head{0};
  alignas(64) Doorbell space;
};

/// Process-local view of one ring (header + data area inside the
/// mapped segment). Strictly single-producer / single-consumer.
class ShmRing {
 public:
  ShmRing() = default;
  ShmRing(ShmRingHdr* hdr, std::byte* data, std::size_t capacity)
      : hdr_(hdr), data_(data), capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  /// Bytes ready to read (consumer view, acquire on tail).
  std::size_t readable() const;
  /// Free space (producer view, acquire on head).
  std::size_t writable() const;

  /// Copies up to `n` bytes in; returns bytes accepted (0 when
  /// full). Publishes with a release store so the consumer's acquire
  /// load of `tail` sees the data. Producer thread only.
  std::size_t write_some(const std::byte* src, std::size_t n);

  /// In-place frame construction (DESIGN.md §18): exposes the next
  /// `n` bytes of ring space as up to two spans (`b` is empty unless
  /// the reservation wraps) without moving the producer cursor.
  /// Returns false when fewer than `n` bytes are free. The producer
  /// writes the frame directly into the spans and publishes it with
  /// commit(n) — no staging buffer, no second memcpy. Producer
  /// thread only; reserve/commit pairs must not interleave with
  /// write_some.
  bool reserve(std::size_t n, std::span<std::byte>& a, std::span<std::byte>& b);
  /// Publishes `n` bytes written through the spans of a successful
  /// reserve(n) (release store on the producer cursor).
  void commit(std::size_t n);

  /// Copies up to `max` bytes out and rings the space doorbell;
  /// returns bytes read. Consumer thread only.
  std::size_t read_some(std::byte* dst, std::size_t max);

  /// Appends up to `max` bytes to `out` (wrap-aware, no zero-fill
  /// pass — this is the pooled-Buffer fill path) and rings the space
  /// doorbell; returns bytes read. Consumer thread only.
  std::size_t read_into(std::vector<std::byte>& out, std::size_t max);

  /// The consumer-rung space eventcount (producers park on it).
  Doorbell& space() { return hdr_->space; }

 private:
  ShmRingHdr* hdr_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t capacity_ = 0;
};

// ---------------------------------------------------------------------------
// Segment layout.

/// Worker attach progress, in `ShmWorkerSlot::state`.
enum : std::uint32_t {
  kSlotEmpty = 0,
  kSlotAttached = 1,
  kSlotBye = 2,  ///< worker detached cleanly (the shm EOF)
};

struct ShmSegmentHdr {
  static constexpr std::uint64_t kMagic = 0x6c73732d72696e67;  // "lss-ring"
  static constexpr std::uint32_t kVersion = 1;

  std::uint64_t magic;  ///< written last at create; attachers check
  std::uint32_t version;
  std::uint32_t num_workers;
  std::uint64_t ring_capacity;  ///< bytes per direction per worker
  std::int32_t owner_pid;       ///< attachers probe it with kill(0)
  std::int32_t master_protocol;
  /// Slot claim cursor: a worker's rank is fetch_add(1) + 1.
  std::atomic<std::uint32_t> next_slot;
  /// Owner sets on destruction: every blocked peer unblocks and
  /// reports the master dead.
  std::atomic<std::uint32_t> closed;
  /// Rung by any worker after writing toward the master (or changing
  /// its slot state); the master's one futex wait covers the fleet.
  Doorbell master_bell;
};

struct ShmWorkerSlot {
  std::atomic<std::uint32_t> state;  ///< kSlotEmpty/Attached/Bye
  std::int32_t protocol;             ///< written before state->Attached
  std::int32_t pid;
  /// CLOCK_MONOTONIC nanoseconds, bumped by the worker's heartbeat
  /// thread; the master's liveness signal while the worker computes.
  std::atomic<std::uint64_t> heartbeat_ns;
  /// Master's close_peer fence: the worker treats it as a hangup.
  std::atomic<std::uint32_t> fenced;
  /// Rung by the master after writing toward this worker.
  Doorbell bell;
  ShmRingHdr to_worker;
  ShmRingHdr to_master;
};

/// The mapped segment: header + per-worker slots + ring data areas.
/// Create/attach/unlink lifecycle mirrors ShmTicketCounter, plus the
/// cleanup registry and dead-owner detection described above.
class ShmSegment {
 public:
  ShmSegment() = default;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;
  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ~ShmSegment();

  /// Creates and owns a fresh segment under `name` ("/lss-...").
  /// Throws lss::ContractError if the name is taken or shm fails.
  static ShmSegment create(const std::string& name, int num_workers,
                           std::size_t ring_capacity, int protocol);

  /// Attaches to an existing segment. Throws ShmAttachError when the
  /// segment is missing, malformed, closed, or its owner is dead.
  static ShmSegment attach(const std::string& name);

  bool valid() const { return hdr_ != nullptr; }
  bool owner() const { return owner_; }
  const std::string& name() const { return name_; }

  ShmSegmentHdr& header() { return *hdr_; }
  const ShmSegmentHdr& header() const { return *hdr_; }
  ShmWorkerSlot& slot(int w);
  const ShmWorkerSlot& slot(int w) const {
    return const_cast<ShmSegment*>(this)->slot(w);
  }
  ShmRing to_worker_ring(int w);
  ShmRing to_master_ring(int w);

  /// True when the creating process is gone (ESRCH on kill(pid, 0)).
  bool owner_dead() const;

  /// Total mapping size for `num_workers` workers with `capacity`
  /// bytes per ring (layout arithmetic, exposed for tests).
  static std::size_t layout_bytes(int num_workers, std::size_t capacity);

 private:
  ShmSegment(std::string name, void* mem, std::size_t bytes, bool owner);
  std::byte* base() { return static_cast<std::byte*>(mem_); }

  std::string name_;
  void* mem_ = nullptr;
  std::size_t bytes_ = 0;
  ShmSegmentHdr* hdr_ = nullptr;
  bool owner_ = false;
};

}  // namespace lss::mp
