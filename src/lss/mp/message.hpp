// Message type and payload (de)serialization for the in-process
// message-passing layer — the shape of MPI point-to-point traffic
// (source, tag, byte buffer) without the wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lss/support/types.hpp"

namespace lss::mp {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = kAnySource;
  int tag = 0;
  std::vector<std::byte> payload;

  bool matches(int source_filter, int tag_filter) const {
    return (source_filter == kAnySource || source_filter == source) &&
           (tag_filter == kAnyTag || tag_filter == tag);
  }
};

/// Append-only payload builder (little-endian, fixed-width fields).
class PayloadWriter {
 public:
  PayloadWriter& put_i64(std::int64_t v);
  PayloadWriter& put_i32(std::int32_t v);
  PayloadWriter& put_f64(double v);
  PayloadWriter& put_range(Range r);
  /// Length-prefixed byte blob (i64 count + raw bytes).
  PayloadWriter& put_blob(const std::vector<std::byte>& blob);
  /// Length-prefixed UTF-8 string.
  PayloadWriter& put_string(const std::string& s);

  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void put_bytes(const void* p, std::size_t n);
  std::vector<std::byte> buf_;
};

/// Sequential payload reader; throws lss::ContractError on underrun.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::byte>& buf) : buf_(buf) {}
  // The reader references the buffer; binding a temporary would
  // dangle as soon as the full expression ends.
  explicit PayloadReader(std::vector<std::byte>&&) = delete;

  std::int64_t get_i64();
  std::int32_t get_i32();
  double get_f64();
  Range get_range();
  std::vector<std::byte> get_blob();
  std::string get_string();

  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void get_bytes(void* p, std::size_t n);
  const std::vector<std::byte>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace lss::mp
