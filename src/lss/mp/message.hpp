// Message type and payload (de)serialization for the in-process
// message-passing layer — the shape of MPI point-to-point traffic
// (source, tag, byte buffer) without the wire.
//
// Payloads are mp::Buffer (pooled storage, see buffer_pool.hpp):
// a received Message returns its bytes to the BufferPool when it
// dies, and decoding reads *views* into that storage
// (std::span<const std::byte>) instead of copying slices out, so
// the steady-state recv path is allocation-free and — with
// get_blob_view() — copy-free up to the consumer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lss/mp/buffer_pool.hpp"
#include "lss/support/types.hpp"

namespace lss::mp {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = kAnySource;
  int tag = 0;
  Buffer payload;

  bool matches(int source_filter, int tag_filter) const {
    return (source_filter == kAnySource || source_filter == source) &&
           (tag_filter == kAnyTag || tag_filter == tag);
  }
};

/// Append-only payload builder (little-endian, fixed-width fields).
///
/// Two storage modes: the default constructor appends into an owned
/// vector handed off with take(); the external-buffer constructor
/// appends into caller-provided storage (a pooled Buffer or a reused
/// scratch vector), which is how hot paths build frames in place
/// without ever owning a temporary. mark()/patch_*() support the
/// fields whose values are only known at flush time (the worker's
/// in-place batched request: feedback counters and the trailer
/// count), keeping the wire format byte-identical to the
/// build-then-copy encoding.
class PayloadWriter {
 public:
  PayloadWriter() : out_(&own_) {}
  /// External-buffer mode: appends to `out` (not cleared — callers
  /// that reuse scratch clear it first). take() is invalid here.
  explicit PayloadWriter(std::vector<std::byte>& out) : out_(&out) {}
  explicit PayloadWriter(Buffer& out) : out_(&out.storage()) {}

  // out_ aliases own_ in the default mode; copying or moving would
  // leave the copy appending into the original's storage.
  PayloadWriter(const PayloadWriter&) = delete;
  PayloadWriter& operator=(const PayloadWriter&) = delete;

  PayloadWriter& put_i64(std::int64_t v);
  PayloadWriter& put_i32(std::int32_t v);
  PayloadWriter& put_f64(double v);
  PayloadWriter& put_range(Range r);
  /// Length-prefixed byte blob (i64 count + raw bytes).
  PayloadWriter& put_blob(std::span<const std::byte> blob);
  /// Length-prefixed UTF-8 string.
  PayloadWriter& put_string(const std::string& s);
  /// Raw bytes, no prefix — for result payloads streamed into an
  /// already-prefixed region (see result_into on the worker).
  PayloadWriter& put_raw(std::span<const std::byte> bytes);
  PayloadWriter& put_raw(const void* p, std::size_t n);

  /// Current write offset, for a later patch_*() — the in-place
  /// equivalent of "fill this field in at flush time".
  std::size_t mark() const { return out_->size(); }
  void patch_i64(std::size_t at, std::int64_t v);
  void patch_i32(std::size_t at, std::int32_t v);
  void patch_f64(std::size_t at, double v);

  std::vector<std::byte> take();
  std::size_t size() const { return out_->size(); }

 private:
  void put_bytes(const void* p, std::size_t n);
  std::vector<std::byte> own_;
  std::vector<std::byte>* out_;
};

/// Sequential payload reader over a borrowed byte view; throws
/// lss::ContractError on underrun. get_blob_view()/get_string_view()
/// return spans into the underlying storage — valid only while the
/// Message (or other owner) is alive.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::byte> buf) : buf_(buf) {}
  // Lvalue owners: reading straight from a vector or pooled Buffer
  // is common in tests and cold paths; these overloads also break
  // the otherwise-ambiguous choice between the span range conversion
  // and an implicit Buffer temporary.
  explicit PayloadReader(const std::vector<std::byte>& buf)
      : buf_(std::span<const std::byte>(buf)) {}
  explicit PayloadReader(const Buffer& buf) : buf_(buf.view()) {}
  // The reader references the buffer; binding a temporary would
  // dangle as soon as the full expression ends.
  explicit PayloadReader(std::vector<std::byte>&&) = delete;
  explicit PayloadReader(Buffer&&) = delete;

  std::int64_t get_i64();
  std::int32_t get_i32();
  double get_f64();
  Range get_range();
  /// Length-prefixed blob, copied out. Prefer get_blob_view() on hot
  /// paths — this survives the owner, the view does not.
  std::vector<std::byte> get_blob();
  /// Length-prefixed blob as a view into the payload storage — the
  /// zero-copy consumption path for result bytes.
  std::span<const std::byte> get_blob_view();
  std::string get_string();

  bool exhausted() const { return pos_ == buf_.size(); }
  /// Unread bytes left.
  std::size_t remaining() const { return buf_.size() - pos_; }
  /// The unread tail, without consuming it.
  std::span<const std::byte> rest() const { return buf_.subspan(pos_); }

  /// A wire-supplied element count about to drive a decode loop (and
  /// usually a reserve): validated against what the unread bytes
  /// could possibly hold — every element encodes to at least
  /// `min_entry_bytes` — so a hostile or corrupt count throws
  /// ContractError here instead of sizing an allocation.
  std::int64_t get_count(std::size_t min_entry_bytes);

 private:
  void get_bytes(void* p, std::size_t n);
  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace lss::mp
