#include "lss/mp/shm_ring.hpp"

#include <fcntl.h>
#include <linux/futex.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <thread>

namespace lss::mp {

namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

// --- owned-segment cleanup registry ----------------------------------------
//
// Fixed-capacity slot table so the signal handler path allocates
// nothing: registration writes a name under the mutex and flips the
// slot's `used` flag last; the handler only reads flags and calls
// shm_unlink (a plain syscall, async-signal-safe).

constexpr int kMaxOwned = 64;
constexpr int kMaxOwnedName = 128;

struct OwnedSlot {
  std::atomic<int> used{0};
  char name[kMaxOwnedName];
};

OwnedSlot g_owned[kMaxOwned];
std::mutex g_owned_mu;
std::once_flag g_install_once;

constexpr int kCleanupSignals[] = {SIGINT, SIGTERM, SIGHUP};
struct sigaction g_old_actions[3];

extern "C" void lss_shm_unlink_owned() {
  for (OwnedSlot& slot : g_owned)
    if (slot.used.load(std::memory_order_acquire) != 0)
      ::shm_unlink(slot.name);
}

extern "C" void lss_shm_signal_cleanup(int sig) {
  lss_shm_unlink_owned();
  // Restore the disposition that was in place before we installed
  // ourselves and re-raise, so the process still dies (or reaches
  // the application's own handler) with the original semantics.
  for (int i = 0; i < 3; ++i)
    if (kCleanupSignals[i] == sig) ::sigaction(sig, &g_old_actions[i], nullptr);
  ::raise(sig);
}

void install_cleanup_handlers() {
  std::call_once(g_install_once, [] {
    std::atexit(lss_shm_unlink_owned);
    struct sigaction sa{};
    sa.sa_handler = lss_shm_signal_cleanup;
    ::sigemptyset(&sa.sa_mask);
    for (int i = 0; i < 3; ++i)
      ::sigaction(kCleanupSignals[i], &sa, &g_old_actions[i]);
  });
}

// --- futex ------------------------------------------------------------------

// Non-PRIVATE ops: the words live in a MAP_SHARED segment and the
// waiter/waker can be different processes.
long futex_call(std::atomic<std::uint32_t>* word, int op, std::uint32_t val,
                const timespec* timeout) {
  return ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), op, val,
                   timeout, nullptr, 0);
}

std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

}  // namespace

void shm_register_owned(const std::string& name) {
  install_cleanup_handlers();
  std::lock_guard<std::mutex> lock(g_owned_mu);
  for (OwnedSlot& slot : g_owned) {
    if (slot.used.load(std::memory_order_relaxed) != 0) continue;
    std::strncpy(slot.name, name.c_str(), kMaxOwnedName - 1);
    slot.name[kMaxOwnedName - 1] = '\0';
    slot.used.store(1, std::memory_order_release);
    return;
  }
  // Table full: cleanup stays best-effort (the owner's destructor
  // still unlinks); never an error on the create path.
}

void shm_unregister_owned(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_owned_mu);
  for (OwnedSlot& slot : g_owned) {
    if (slot.used.load(std::memory_order_relaxed) == 0) continue;
    if (std::strncmp(slot.name, name.c_str(), kMaxOwnedName) != 0) continue;
    slot.used.store(0, std::memory_order_release);
    return;
  }
}

// --- doorbell ---------------------------------------------------------------

void doorbell_ring(Doorbell& bell) {
  // seq_cst pairs with the waiter's announce-then-recheck (Dekker):
  // either the waiter sees the new sequence, or we see its waiting
  // flag and pay the wake syscall.
  bell.seq.fetch_add(1, std::memory_order_seq_cst);
  if (bell.waiting.load(std::memory_order_seq_cst) != 0)
    futex_call(&bell.seq, FUTEX_WAKE, /*val=*/INT32_MAX, nullptr);
}

std::uint32_t doorbell_peek(const Doorbell& bell) {
  return bell.seq.load(std::memory_order_acquire);
}

bool doorbell_wait(Doorbell& bell, std::uint32_t seen, milliseconds timeout,
                   int yield_spins) {
  const auto deadline = Clock::now() + timeout;
  // Yield phase: on a single-CPU box each yield is the context
  // switch that lets the producer run, so the common ping-pong never
  // touches the futex at all.
  for (int i = 0; i < yield_spins; ++i) {
    if (bell.seq.load(std::memory_order_acquire) != seen) return true;
    std::this_thread::yield();
  }
  while (true) {
    bell.waiting.store(1, std::memory_order_seq_cst);
    if (bell.seq.load(std::memory_order_seq_cst) != seen) {
      bell.waiting.store(0, std::memory_order_relaxed);
      return true;
    }
    const auto left = deadline - Clock::now();
    if (left <= Clock::duration::zero()) {
      bell.waiting.store(0, std::memory_order_relaxed);
      return false;
    }
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(left).count();
    timespec ts{};
    ts.tv_sec = static_cast<time_t>(ns / 1000000000);
    ts.tv_nsec = static_cast<long>(ns % 1000000000);
    futex_call(&bell.seq, FUTEX_WAIT, seen, &ts);
    bell.waiting.store(0, std::memory_order_relaxed);
    if (bell.seq.load(std::memory_order_acquire) != seen) return true;
  }
}

int default_yield_spins() {
  static const int spins =
      std::thread::hardware_concurrency() <= 1 ? 64 : 256;
  return spins;
}

// --- ring -------------------------------------------------------------------

std::size_t ShmRing::readable() const {
  const std::uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
  const std::uint64_t head = hdr_->head.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(tail - head);
}

std::size_t ShmRing::writable() const {
  const std::uint64_t head = hdr_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = hdr_->tail.load(std::memory_order_relaxed);
  return capacity_ - static_cast<std::size_t>(tail - head);
}

std::size_t ShmRing::write_some(const std::byte* src, std::size_t n) {
  const std::uint64_t head = hdr_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = hdr_->tail.load(std::memory_order_relaxed);
  const std::size_t free = capacity_ - static_cast<std::size_t>(tail - head);
  n = std::min(n, free);
  if (n == 0) return 0;
  const std::size_t idx = static_cast<std::size_t>(tail % capacity_);
  const std::size_t first = std::min(n, capacity_ - idx);
  std::memcpy(data_ + idx, src, first);
  if (n > first) std::memcpy(data_, src + first, n - first);
  hdr_->tail.store(tail + n, std::memory_order_release);
  return n;
}

bool ShmRing::reserve(std::size_t n, std::span<std::byte>& a,
                      std::span<std::byte>& b) {
  const std::uint64_t head = hdr_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = hdr_->tail.load(std::memory_order_relaxed);
  const std::size_t free = capacity_ - static_cast<std::size_t>(tail - head);
  if (free < n) return false;
  const std::size_t idx = static_cast<std::size_t>(tail % capacity_);
  const std::size_t first = std::min(n, capacity_ - idx);
  a = {data_ + idx, first};
  b = {data_, n - first};
  return true;
}

void ShmRing::commit(std::size_t n) {
  const std::uint64_t tail = hdr_->tail.load(std::memory_order_relaxed);
  hdr_->tail.store(tail + n, std::memory_order_release);
}

std::size_t ShmRing::read_into(std::vector<std::byte>& out, std::size_t max) {
  const std::uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
  const std::uint64_t head = hdr_->head.load(std::memory_order_relaxed);
  const std::size_t avail = static_cast<std::size_t>(tail - head);
  const std::size_t n = std::min(max, avail);
  if (n == 0) return 0;
  const std::size_t idx = static_cast<std::size_t>(head % capacity_);
  const std::size_t first = std::min(n, capacity_ - idx);
  out.insert(out.end(), data_ + idx, data_ + idx + first);
  if (n > first) out.insert(out.end(), data_, data_ + (n - first));
  hdr_->head.store(head + n, std::memory_order_release);
  doorbell_ring(hdr_->space);
  return n;
}

std::size_t ShmRing::read_some(std::byte* dst, std::size_t max) {
  const std::uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
  const std::uint64_t head = hdr_->head.load(std::memory_order_relaxed);
  const std::size_t avail = static_cast<std::size_t>(tail - head);
  const std::size_t n = std::min(max, avail);
  if (n == 0) return 0;
  const std::size_t idx = static_cast<std::size_t>(head % capacity_);
  const std::size_t first = std::min(n, capacity_ - idx);
  std::memcpy(dst, data_ + idx, first);
  if (n > first) std::memcpy(dst + first, data_, n - first);
  hdr_->head.store(head + n, std::memory_order_release);
  doorbell_ring(hdr_->space);
  return n;
}

// --- segment ----------------------------------------------------------------

namespace {

std::size_t slots_offset() { return align_up(sizeof(ShmSegmentHdr), 64); }
std::size_t slot_stride() { return align_up(sizeof(ShmWorkerSlot), 64); }

std::size_t data_offset(int num_workers) {
  return slots_offset() +
         static_cast<std::size_t>(num_workers) * slot_stride();
}

}  // namespace

std::size_t ShmSegment::layout_bytes(int num_workers, std::size_t capacity) {
  return data_offset(num_workers) +
         static_cast<std::size_t>(num_workers) * 2 * capacity;
}

ShmSegment::ShmSegment(std::string name, void* mem, std::size_t bytes,
                       bool owner)
    : name_(std::move(name)),
      mem_(mem),
      bytes_(bytes),
      hdr_(static_cast<ShmSegmentHdr*>(mem)),
      owner_(owner) {}

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : name_(std::move(other.name_)),
      mem_(other.mem_),
      bytes_(other.bytes_),
      hdr_(other.hdr_),
      owner_(other.owner_) {
  other.mem_ = nullptr;
  other.hdr_ = nullptr;
  other.owner_ = false;
}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    this->~ShmSegment();
    new (this) ShmSegment(std::move(other));
  }
  return *this;
}

ShmSegment::~ShmSegment() {
  if (hdr_ == nullptr) return;
  if (owner_) {
    hdr_->closed.store(1, std::memory_order_release);
    // Unpark everyone: workers blocked on their grant bell or on a
    // full upstream ring must notice the hangup now, not at their
    // next timeout slice.
    const int n = static_cast<int>(hdr_->num_workers);
    for (int w = 0; w < n; ++w) {
      ShmWorkerSlot& s = slot(w);
      doorbell_ring(s.bell);
      doorbell_ring(s.to_master.space);
      doorbell_ring(s.to_worker.space);
    }
    ::munmap(mem_, bytes_);
    ::shm_unlink(name_.c_str());
    shm_unregister_owned(name_);
  } else {
    ::munmap(mem_, bytes_);
  }
  mem_ = nullptr;
  hdr_ = nullptr;
}

ShmSegment ShmSegment::create(const std::string& name, int num_workers,
                              std::size_t ring_capacity, int protocol) {
  LSS_REQUIRE(num_workers >= 1, "shm segment needs at least one worker");
  LSS_REQUIRE(ring_capacity >= 1024, "shm ring capacity must be >= 1 KiB");
  const std::size_t cap = align_up(ring_capacity, 64);
  const std::size_t bytes = layout_bytes(num_workers, cap);

  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  LSS_REQUIRE(fd >= 0, "shm_open(create " + name +
                           ") failed: " + std::strerror(errno));
  // Register before anything can fail: a crash between here and the
  // destructor must still unlink the name.
  shm_register_owned(name);
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(name.c_str());
    shm_unregister_owned(name);
    LSS_REQUIRE(false,
                "ftruncate(" + name + ") failed: " + std::strerror(err));
  }
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                     0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    shm_unregister_owned(name);
    LSS_REQUIRE(false, "mmap(" + name + ") failed");
  }

  auto* hdr = new (mem) ShmSegmentHdr{};
  hdr->version = ShmSegmentHdr::kVersion;
  hdr->num_workers = static_cast<std::uint32_t>(num_workers);
  hdr->ring_capacity = cap;
  hdr->owner_pid = static_cast<std::int32_t>(::getpid());
  hdr->master_protocol = protocol;
  hdr->next_slot.store(0, std::memory_order_relaxed);
  hdr->closed.store(0, std::memory_order_relaxed);
  for (int w = 0; w < num_workers; ++w)
    new (static_cast<std::byte*>(mem) + slots_offset() +
         static_cast<std::size_t>(w) * slot_stride()) ShmWorkerSlot{};
  // Attachers check the magic *after* everything above is in place
  // (same publication order as ShmTicketCounter::create).
  hdr->magic = ShmSegmentHdr::kMagic;
  return ShmSegment(name, mem, bytes, /*owner=*/true);
}

ShmSegment ShmSegment::attach(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0)
    throw ShmAttachError("shm_open(attach " + name +
                             ") failed: " + std::strerror(errno),
                         /*dead_owner=*/false);
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      st.st_size < static_cast<off_t>(sizeof(ShmSegmentHdr))) {
    ::close(fd);
    throw ShmAttachError("shm segment " + name + " is not an lss transport",
                         /*dead_owner=*/false);
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                     0);
  ::close(fd);
  if (mem == MAP_FAILED)
    throw ShmAttachError("mmap(" + name + ") failed", /*dead_owner=*/false);
  auto* hdr = static_cast<ShmSegmentHdr*>(mem);
  if (hdr->magic != ShmSegmentHdr::kMagic ||
      hdr->version != ShmSegmentHdr::kVersion ||
      layout_bytes(static_cast<int>(hdr->num_workers),
                   static_cast<std::size_t>(hdr->ring_capacity)) > bytes) {
    ::munmap(mem, bytes);
    throw ShmAttachError("shm segment " + name + " is not an lss transport",
                         /*dead_owner=*/false);
  }
  ShmSegment seg(name, mem, bytes, /*owner=*/false);
  // A dead owner is the one failure that would otherwise *hang* the
  // attacher (nobody will ever serve its rings): report it as such.
  if (seg.owner_dead())
    throw ShmAttachError("shm segment " + name + " is orphaned: owner pid " +
                             std::to_string(hdr->owner_pid) + " is dead",
                         /*dead_owner=*/true);
  if (hdr->closed.load(std::memory_order_acquire) != 0)
    throw ShmAttachError("shm segment " + name + " is already closed",
                         /*dead_owner=*/false);
  return seg;
}

ShmWorkerSlot& ShmSegment::slot(int w) {
  LSS_ASSERT(hdr_ != nullptr && w >= 0 &&
                 w < static_cast<int>(hdr_->num_workers),
             "shm slot index out of range");
  return *reinterpret_cast<ShmWorkerSlot*>(
      base() + slots_offset() + static_cast<std::size_t>(w) * slot_stride());
}

ShmRing ShmSegment::to_worker_ring(int w) {
  const auto cap = static_cast<std::size_t>(hdr_->ring_capacity);
  std::byte* data =
      base() + data_offset(static_cast<int>(hdr_->num_workers)) +
      static_cast<std::size_t>(w) * 2 * cap;
  return ShmRing(&slot(w).to_worker, data, cap);
}

ShmRing ShmSegment::to_master_ring(int w) {
  const auto cap = static_cast<std::size_t>(hdr_->ring_capacity);
  std::byte* data =
      base() + data_offset(static_cast<int>(hdr_->num_workers)) +
      static_cast<std::size_t>(w) * 2 * cap + cap;
  return ShmRing(&slot(w).to_master, data, cap);
}

bool ShmSegment::owner_dead() const {
  const pid_t pid = static_cast<pid_t>(hdr_->owner_pid);
  if (pid <= 0) return false;
  return ::kill(pid, 0) != 0 && errno == ESRCH;
}

}  // namespace lss::mp
