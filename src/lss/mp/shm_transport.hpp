// Shared-memory backend of mp::Transport: the TCP star topology with
// the sockets swapped for SPSC byte rings in one POSIX shm segment
// (DESIGN.md §17).
//
// Same-host fleets pay TCP-loopback prices per chunk — syscall +
// stack traversal both ways — for bytes that never leave the box.
// This backend moves the same wire frames (mp/framing.hpp, codecs
// unchanged) through shared memory instead: send() is a memcpy into
// the peer's ring plus a doorbell bump, recv() is a memcpy out, and
// the futex syscall only happens when a side actually has to sleep.
// Everything layered on mp::Transport — drain, the depth-k prefetch
// pipeline, batched acks, masterless FetchAdd frames, the service
// protocol — rides it transparently.
//
//   * ShmMasterTransport — hosts rank 0. Creates and owns the
//     segment (the name travels to workers out of band, e.g. in the
//     spawned CLI's argv); accept_workers() blocks until all
//     `num_workers` slots are claimed. Destruction marks the segment
//     closed, wakes every parked peer, and unlinks the name.
//   * ShmWorkerTransport — attaches by name; its rank is the claimed
//     slot index + 1 (fetch_add, no handshake frames). Runs the same
//     background heartbeat thread as the TCP worker, except a
//     heartbeat is one atomic timestamp store, not a frame.
//
// Liveness mirrors TCP: the master reports a worker dead on clean
// detach (slot state Bye — the shm EOF) or when its heartbeat
// timestamp goes stale past `liveness_timeout`; workers report the
// master dead when the segment's closed flag is set (or the owning
// pid vanished). Protocol generations negotiate min(ours, peer's)
// through the segment header / slot fields, byte-compatible with the
// TCP hello handshake's outcome.
//
// Thread-safety: exactly the TCP contract — one driving thread per
// master endpoint; a worker endpoint is its owner thread plus the
// internal heartbeat thread (which touches only its own atomic).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "lss/mp/channel.hpp"
#include "lss/mp/framing.hpp"
#include "lss/mp/shm_ring.hpp"
#include "lss/mp/transport.hpp"

namespace lss::mp {

/// Streams ring bytes straight into pooled message payloads: a
/// 12-byte header accumulator, then the payload read directly into a
/// BufferPool buffer sized for the frame. Compared to the socket
/// path's FrameDecoder this removes both the 64 KiB staging read and
/// the assemble-then-copy of the frame body — on shm the only copy
/// between the producer's ring commit and the decoded payload is the
/// ring-to-buffer read itself. Throws lss::ContractError when a
/// header announces more than `max_payload` (the stream is
/// unrecoverable; the caller drops the peer).
class RingFrameReader {
 public:
  RingFrameReader() = default;
  explicit RingFrameReader(std::uint32_t max_payload)
      : max_payload_(max_payload) {}

  /// Consumes every readable byte of `ring`; completed frames are
  /// pushed into `inbox` stamped with `source_rank` (the ring, not
  /// the frame header, says who sent them). Returns true when any
  /// byte was consumed.
  bool drain(ShmRing& ring, Mailbox& inbox, int source_rank);

 private:
  std::uint32_t max_payload_ = kMaxFramePayload;
  std::size_t header_fill_ = 0;
  std::byte header_[kFrameHeaderBytes];
  bool in_payload_ = false;
  std::size_t need_ = 0;
  Message msg_;
};

struct ShmOptions {
  /// Ring bytes per direction per worker. Frames larger than this
  /// stream through in pieces; 1 MiB keeps any sane result blob in
  /// one write.
  std::size_t ring_capacity = 1u << 20;
  /// Worker-side heartbeat-timestamp period; zero disables (the
  /// master then falls back to data recency only).
  std::chrono::milliseconds heartbeat_period{100};
  /// Master-side: heartbeat/data silence after which peer_alive()
  /// reports false; zero = slot state only.
  std::chrono::milliseconds liveness_timeout{1000};
  /// How long accept_workers() waits for the fleet.
  std::chrono::milliseconds handshake_timeout{10000};
  /// Per-frame payload cap enforced on receive (see mp/framing.hpp).
  std::uint32_t max_frame_payload = kMaxFramePayload;
  /// Highest protocol generation this endpoint speaks; each pairing
  /// negotiates min(ours, peer's) like the TCP hello exchange.
  int protocol = kProtoCurrent;
  /// sched_yield rounds before parking in futex; -1 = auto (see
  /// default_yield_spins — single-core parks almost immediately).
  int yield_spins = -1;
};

class ShmMasterTransport final : public Transport {
 public:
  /// Creates and owns the segment under `name` ("/lss-...").
  ShmMasterTransport(const std::string& name, int num_workers,
                     ShmOptions options = {});
  ~ShmMasterTransport() override;

  /// The segment name — ship it to the workers.
  const std::string& name() const { return seg_.name(); }

  /// Blocks until all worker slots are claimed; throws
  /// lss::ContractError if they do not all arrive in time.
  void accept_workers();

  int size() const override { return num_workers_ + 1; }
  std::string kind() const override { return "shm"; }

  void send(int from, int to, int tag, Buffer payload) override;
  /// In-ring frame construction: the frame's ring space is reserved
  /// and header + parts are laid down directly in it (one commit,
  /// one doorbell) — no staging buffer. Frames larger than the ring
  /// stream through piecewise as before.
  void sendv(int from, int to, int tag,
             std::span<const std::span<const std::byte>> parts) override;
  Message recv(int rank, int source = kAnySource,
               int tag = kAnyTag) override;
  std::optional<Message> recv_for(int rank,
                                  std::chrono::steady_clock::duration timeout,
                                  int source = kAnySource,
                                  int tag = kAnyTag) override;
  std::optional<Message> try_recv(int rank, int source = kAnySource,
                                  int tag = kAnyTag) override;
  void drain_into(int rank, std::vector<Message>& out,
                  int source = kAnySource, int tag = kAnyTag) override;
  bool probe(int rank, int source = kAnySource,
             int tag = kAnyTag) const override;
  bool peer_alive(int rank) const override;
  void close_peer(int rank) override;
  int peer_protocol(int rank) const override;

 private:
  struct Peer {
    bool open = false;
    int protocol = kProtoLegacy;  ///< min(ours, slot's) at accept
    /// Monotonic ns of the last ring bytes read from this worker;
    /// liveness is max(this, the slot's heartbeat timestamp).
    std::uint64_t last_seen_ns = 0;
    RingFrameReader reader{kMaxFramePayload};
  };

  /// Reads all available ring bytes from every open worker into the
  /// mailbox; waits on the master doorbell up to `wait` when nothing
  /// is ready. Returns true on any delivered frame or state change.
  bool pump(std::chrono::milliseconds wait);
  bool ingest_peer(int w);
  void drop_peer(int w);

  ShmOptions options_;
  int num_workers_;
  int yield_spins_;
  ShmSegment seg_;
  std::vector<Peer> peers_;  // index w hosts rank w + 1
  Mailbox inbox_;  // rank 0's queue
};

class ShmWorkerTransport final : public Transport {
 public:
  /// Attaches to the master's segment and claims the next free slot.
  /// Throws ShmAttachError (segment missing / malformed / closed /
  /// owner dead) or lss::ContractError (all slots taken).
  explicit ShmWorkerTransport(const std::string& name,
                              ShmOptions options = {});
  ~ShmWorkerTransport() override;

  /// This endpoint's rank (slot index + 1, claim order).
  int rank() const { return rank_; }

  int size() const override { return num_workers_ + 1; }
  std::string kind() const override { return "shm"; }

  void send(int from, int to, int tag, Buffer payload) override;
  /// Same in-ring reserve/commit construction as the master's.
  void sendv(int from, int to, int tag,
             std::span<const std::span<const std::byte>> parts) override;
  Message recv(int rank, int source = kAnySource,
               int tag = kAnyTag) override;
  std::optional<Message> recv_for(int rank,
                                  std::chrono::steady_clock::duration timeout,
                                  int source = kAnySource,
                                  int tag = kAnyTag) override;
  std::optional<Message> try_recv(int rank, int source = kAnySource,
                                  int tag = kAnyTag) override;
  void drain_into(int rank, std::vector<Message>& out,
                  int source = kAnySource, int tag = kAnyTag) override;
  bool probe(int rank, int source = kAnySource,
             int tag = kAnyTag) const override;
  bool peer_alive(int rank) const override;
  void close_peer(int rank) override;
  int peer_protocol(int rank) const override;

 private:
  bool pump(std::chrono::milliseconds wait);
  bool ingest();
  /// Master gone (segment closed, slot fenced, or owner pid dead)?
  bool master_gone() const;
  void heartbeat_main();

  ShmOptions options_;
  int rank_ = -1;
  int num_workers_ = 0;
  int negotiated_ = kProtoLegacy;
  int yield_spins_;
  ShmSegment seg_;
  /// Flipped by the pumping thread when the master hangs up; read by
  /// the heartbeat thread deciding whether to keep beating.
  std::atomic<bool> open_{false};
  RingFrameReader reader_{kMaxFramePayload};
  Mailbox inbox_;

  std::thread heartbeat_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;
};

}  // namespace lss::mp
