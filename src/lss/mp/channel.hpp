// Per-rank mailbox: an unbounded MPSC queue with MPI-style matching
// (receive by source and/or tag, in arrival order per match).
//
// Storage is a RingFifo (vector + head index) rather than a deque:
// at steady state pushes and pops recycle one contiguous buffer and
// allocate nothing, which the data plane's zero-allocation gate
// depends on (std::deque churns a block allocation every ~block of
// messages even at constant depth).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

#include "lss/mp/message.hpp"
#include "lss/support/ring_fifo.hpp"

namespace lss::mp {

class Mailbox {
 public:
  void push(Message m);

  /// Blocking receive of the earliest message matching the filters
  /// (kAnySource / kAnyTag wildcards).
  Message recv(int source = kAnySource, int tag = kAnyTag);

  /// Bounded-wait receive: nullopt once `timeout` expires with no
  /// match. Matching and dequeue happen under one lock, so unlike a
  /// probe-then-recv loop this cannot lose the message to a
  /// concurrent receiver.
  std::optional<Message> recv_for(std::chrono::steady_clock::duration timeout,
                                  int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking receive.
  std::optional<Message> try_recv(int source = kAnySource,
                                  int tag = kAnyTag);

  /// Atomically pops *every* queued message matching the filters, in
  /// arrival order, under one lock acquisition, replacing the
  /// contents of `out` (cleared, capacity kept — reactor loops reuse
  /// one vector allocation-free). This is the reactor ready-set
  /// primitive: unlike a probe/try_recv loop, the matching and all
  /// dequeues are indivisible with respect to concurrent receivers,
  /// so a message can be neither claimed twice nor missed between
  /// calls.
  void drain_into(std::vector<Message>& out, int source = kAnySource,
                  int tag = kAnyTag);
  std::vector<Message> drain(int source = kAnySource, int tag = kAnyTag);

  /// True if a matching message is queued (MPI_Iprobe). Advisory: a
  /// concurrent try_recv may drain the message before the caller
  /// acts on a true — use recv_for() to wait for one atomically
  /// (see the probe-then-recv note on mp::Transport).
  bool probe(int source = kAnySource, int tag = kAnyTag) const;

  std::size_t pending() const;

 private:
  std::optional<Message> pop_match_locked(int source, int tag);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  RingFifo<Message> queue_;
};

}  // namespace lss::mp
