#include "lss/mp/framing.hpp"

#include <cstring>
#include <string>

#include "lss/support/assert.hpp"

namespace lss::mp {

namespace {

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
}

void put_u32_at(std::byte* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out[i] = static_cast<std::byte>((v >> (8 * i)) & 0xffu);
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

void encode_frame_header(std::byte (&out)[kFrameHeaderBytes], int source,
                         int tag, std::uint32_t payload_len) {
  put_u32_at(out, payload_len);
  put_u32_at(out + 4, static_cast<std::uint32_t>(tag));
  put_u32_at(out + 8, static_cast<std::uint32_t>(source));
}

void decode_frame_header(const std::byte* hdr, std::uint32_t& payload_len,
                         int& tag, int& source) {
  payload_len = get_u32(hdr);
  tag = static_cast<std::int32_t>(get_u32(hdr + 4));
  source = static_cast<std::int32_t>(get_u32(hdr + 8));
}

std::vector<std::byte> encode_frame(int source, int tag,
                                    std::span<const std::byte> payload,
                                    std::uint32_t max_payload) {
  std::vector<std::byte> out;
  encode_frame_into(out, source, tag, payload, max_payload);
  return out;
}

void encode_frame_into(std::vector<std::byte>& out, int source, int tag,
                       std::span<const std::byte> payload,
                       std::uint32_t max_payload) {
  LSS_REQUIRE(payload.size() <= max_payload,
              "frame payload exceeds the wire limit");
  out.clear();
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, static_cast<std::uint32_t>(tag));
  put_u32(out, static_cast<std::uint32_t>(source));
  out.insert(out.end(), payload.begin(), payload.end());
}

FrameDecoder::FrameDecoder(std::uint32_t max_payload)
    : max_payload_(max_payload) {}

void FrameDecoder::feed(const std::byte* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
  std::size_t pos = 0;
  while (buf_.size() - pos >= kFrameHeaderBytes) {
    const std::uint32_t len = get_u32(buf_.data() + pos);
    LSS_REQUIRE(len <= max_payload_,
                "frame header announces an oversized payload (" +
                    std::to_string(len) + " > " +
                    std::to_string(max_payload_) + " bytes)");
    if (buf_.size() - pos < kFrameHeaderBytes + len) break;
    Message m;
    m.tag = static_cast<std::int32_t>(get_u32(buf_.data() + pos + 4));
    m.source = static_cast<std::int32_t>(get_u32(buf_.data() + pos + 8));
    const std::byte* body = buf_.data() + pos + kFrameHeaderBytes;
    Buffer b = BufferPool::global().acquire(len);
    b.storage().insert(b.storage().end(), body, body + len);
    m.payload = std::move(b);
    ready_.push_back(std::move(m));
    pos += kFrameHeaderBytes + len;
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
}

std::optional<Message> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  return ready_.pop_front();
}

}  // namespace lss::mp
