// TCP backend of mp::Transport: the paper's master-slave protocol on
// real POSIX stream sockets (DESIGN.md §11).
//
// Topology is a star, exactly like the mpich runs on the 9-node Sun
// cluster: the master listens, every worker opens one connection.
// Each endpoint object lives in its own process (or thread, for
// loopback tests):
//
//   * TcpMasterTransport — hosts rank 0. Binds/listens in the
//     constructor (port 0 picks an ephemeral port, see port()), then
//     accept_workers() blocks until all `num_workers` peers finished
//     the hello handshake and have their ranks 1..N assigned in
//     accept order.
//   * TcpWorkerTransport — hosts one worker rank, learned from the
//     master's hello-ack. Runs a background heartbeat thread so the
//     master can tell "computing a long chunk" from "dead or
//     wedged" even while the worker is off executing iterations.
//
// Messages travel as length-prefixed frames (mp/framing.hpp); a
// frame announcing an oversized payload marks the connection corrupt
// and it is dropped. Liveness at the master is socket state plus
// heartbeat recency: peer_alive(w) turns false on EOF/reset or when
// nothing (data or heartbeat) arrived within `liveness_timeout`.
// Receive deadlines (`recv_for`) are poll(2)-based, so a wedged peer
// cannot block the master loop.
//
// Thread-safety: a master endpoint must be driven by one thread (the
// master loop). A worker endpoint is safe for its owner thread plus
// the internal heartbeat thread (writes are serialized internally).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "lss/mp/channel.hpp"
#include "lss/mp/framing.hpp"
#include "lss/mp/transport.hpp"

namespace lss::mp {

struct TcpOptions {
  /// Worker-side heartbeat send period; zero disables heartbeats.
  std::chrono::milliseconds heartbeat_period{100};
  /// Master-side: silence (no frame, no heartbeat) after which
  /// peer_alive() reports false; zero = socket state only.
  std::chrono::milliseconds liveness_timeout{1000};
  /// How long accept_workers() / connect wait before giving up.
  std::chrono::milliseconds handshake_timeout{10000};
  /// Per-frame payload cap enforced on receive (see mp/framing.hpp).
  std::uint32_t max_frame_payload = kMaxFramePayload;
  /// Highest protocol generation this endpoint speaks (mp::kProto*).
  /// Each connection negotiates min(ours, peer's) in the hello/ack
  /// handshake; set kProtoLegacy to emulate a pre-pipeline peer
  /// byte-for-byte (interop tests).
  int protocol = kProtoCurrent;
};

class TcpMasterTransport final : public Transport {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral).
  TcpMasterTransport(std::uint16_t port, int num_workers,
                     TcpOptions options = {});
  ~TcpMasterTransport() override;

  /// The actually bound port — pass it to the workers.
  std::uint16_t port() const { return port_; }

  /// Accepts and handshakes all workers; throws lss::ContractError
  /// if they do not all arrive within handshake_timeout.
  void accept_workers();

  int size() const override { return num_workers_ + 1; }
  std::string kind() const override { return "tcp"; }

  void send(int from, int to, int tag, Buffer payload) override;
  /// Header + parts leave via one sendmsg (scatter-gather): the
  /// frame is never assembled contiguously in user space.
  void sendv(int from, int to, int tag,
             std::span<const std::span<const std::byte>> parts) override;
  Message recv(int rank, int source = kAnySource,
               int tag = kAnyTag) override;
  std::optional<Message> recv_for(int rank,
                                  std::chrono::steady_clock::duration timeout,
                                  int source = kAnySource,
                                  int tag = kAnyTag) override;
  std::optional<Message> try_recv(int rank, int source = kAnySource,
                                  int tag = kAnyTag) override;
  void drain_into(int rank, std::vector<Message>& out,
                  int source = kAnySource, int tag = kAnyTag) override;
  bool probe(int rank, int source = kAnySource,
             int tag = kAnyTag) const override;
  bool peer_alive(int rank) const override;
  void close_peer(int rank) override;
  /// Per-connection protocol generation agreed at accept time.
  int peer_protocol(int rank) const override;

 private:
  struct Peer {
    int fd = -1;
    bool open = false;
    int protocol = kProtoLegacy;  ///< negotiated at handshake
    FrameDecoder decoder{kMaxFramePayload};
    std::chrono::steady_clock::time_point last_seen{};
  };

  /// Polls every open worker socket for up to `wait`, draining
  /// arrived frames into the mailbox. Returns true if any frame or
  /// connection state change was observed.
  bool pump(std::chrono::milliseconds wait);
  /// Pops any frames already buffered in worker w's decoder into the
  /// mailbox. A drain can slurp several frames in one read, so this
  /// must run before polling — the socket shows no data for them.
  bool flush_decoder(int w);
  void drop_peer(Peer& peer);

  TcpOptions options_;
  int num_workers_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<Peer> peers_;  // index w hosts rank w + 1
  Mailbox inbox_;            // rank 0's queue
};

class TcpWorkerTransport final : public Transport {
 public:
  /// Connects to the master at `host`:`port` and completes the hello
  /// handshake; throws lss::ContractError on refusal or timeout.
  TcpWorkerTransport(const std::string& host, std::uint16_t port,
                     TcpOptions options = {});
  ~TcpWorkerTransport() override;

  /// This endpoint's rank (1-based; worker index + 1), as assigned
  /// by the master in accept order.
  int rank() const { return rank_; }

  int size() const override { return num_workers_ + 1; }
  std::string kind() const override { return "tcp"; }

  void send(int from, int to, int tag, Buffer payload) override;
  /// Header + parts leave via one sendmsg under the write lock.
  void sendv(int from, int to, int tag,
             std::span<const std::span<const std::byte>> parts) override;
  Message recv(int rank, int source = kAnySource,
               int tag = kAnyTag) override;
  std::optional<Message> recv_for(int rank,
                                  std::chrono::steady_clock::duration timeout,
                                  int source = kAnySource,
                                  int tag = kAnyTag) override;
  std::optional<Message> try_recv(int rank, int source = kAnySource,
                                  int tag = kAnyTag) override;
  void drain_into(int rank, std::vector<Message>& out,
                  int source = kAnySource, int tag = kAnyTag) override;
  bool probe(int rank, int source = kAnySource,
             int tag = kAnyTag) const override;
  bool peer_alive(int rank) const override;
  void close_peer(int rank) override;
  /// Protocol generation the master's hello-ack agreed to.
  int peer_protocol(int rank) const override;

 private:
  bool pump(std::chrono::milliseconds wait);
  /// Same decoder-leftover flush as the master's (the handshake
  /// drain can slurp the hello-ack plus later frames in one read).
  bool flush_decoder();
  void write_frame_locked(int tag,
                          std::span<const std::span<const std::byte>> parts);
  void heartbeat_main();

  TcpOptions options_;
  int fd_ = -1;
  int rank_ = -1;
  int num_workers_ = 0;
  int negotiated_ = kProtoLegacy;  ///< protocol agreed with the master
  /// Atomic: flipped by the pumping thread on EOF and read by the
  /// heartbeat thread deciding whether to keep beating.
  std::atomic<bool> open_{false};
  FrameDecoder decoder_{kMaxFramePayload};
  Mailbox inbox_;

  std::mutex write_mu_;  // serializes main-thread sends vs heartbeats
  std::thread heartbeat_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;
};

}  // namespace lss::mp
