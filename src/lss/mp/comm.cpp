#include "lss/mp/comm.hpp"

#include "lss/obs/trace.hpp"
#include "lss/support/assert.hpp"

namespace lss::mp {

namespace {

// Trace PEs follow the rt convention: rank 0 is the master
// (obs::kMasterPe), worker w is rank w + 1.
int pe_of(int rank) { return rank - 1; }

}  // namespace

Comm::Comm(int size) {
  LSS_REQUIRE(size >= 1, "communicator needs at least one rank");
  boxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i)
    boxes_.push_back(std::make_unique<Mailbox>());
}

const Mailbox& Comm::box(int rank) const {
  LSS_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
  return *boxes_[static_cast<std::size_t>(rank)];
}

Mailbox& Comm::box(int rank) {
  LSS_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
  return *boxes_[static_cast<std::size_t>(rank)];
}

void Comm::send(int from, int to, int tag, Buffer payload) {
  LSS_REQUIRE(from >= 0 && from < size(), "source rank out of range");
  obs::emit(obs::EventKind::MsgSend, pe_of(from), {}, tag,
            static_cast<std::int64_t>(payload.size()));
  Message m;
  m.source = from;
  m.tag = tag;
  m.payload = std::move(payload);
  box(to).push(std::move(m));
}

Message Comm::recv(int rank, int source, int tag) {
  Message m = box(rank).recv(source, tag);
  obs::emit(obs::EventKind::MsgRecv, pe_of(rank), {}, m.tag,
            pe_of(m.source));
  return m;
}

std::optional<Message> Comm::recv_for(
    int rank, std::chrono::steady_clock::duration timeout, int source,
    int tag) {
  auto m = box(rank).recv_for(timeout, source, tag);
  if (m)
    obs::emit(obs::EventKind::MsgRecv, pe_of(rank), {}, m->tag,
              pe_of(m->source));
  return m;
}

std::optional<Message> Comm::try_recv(int rank, int source, int tag) {
  return box(rank).try_recv(source, tag);
}

void Comm::drain_into(int rank, std::vector<Message>& out, int source,
                      int tag) {
  box(rank).drain_into(out, source, tag);
  for (const Message& m : out)
    obs::emit(obs::EventKind::MsgRecv, pe_of(rank), {}, m.tag,
              pe_of(m.source));
}

bool Comm::probe(int rank, int source, int tag) const {
  return box(rank).probe(source, tag);
}

}  // namespace lss::mp
