#include "lss/mp/buffer_pool.hpp"

namespace lss::mp {

namespace {

// Smallest class whose byte size is >= n, or kNumClasses when n
// exceeds the largest class.
int class_for_size(std::size_t n) {
  std::size_t bytes = BufferPool::kMinClassBytes;
  for (int c = 0; c < BufferPool::kNumClasses; ++c, bytes <<= 1)
    if (n <= bytes) return c;
  return BufferPool::kNumClasses;
}

// Largest class whose byte size is <= cap, or -1 when cap is smaller
// than the smallest class. Used on release: the recycled vector must
// satisfy any future acquire of that class without growing.
int class_for_capacity(std::size_t cap) {
  int c = -1;
  std::size_t bytes = BufferPool::kMinClassBytes;
  while (c + 1 < BufferPool::kNumClasses && bytes <= cap) {
    ++c;
    bytes <<= 1;
  }
  return c;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

BufferPool::BufferPool(std::size_t ring_slots) {
  const std::size_t slots = round_up_pow2(ring_slots < 2 ? 2 : ring_slots);
  for (ClassRing& ring : classes_) {
    ring.cells = std::make_unique<Cell[]>(slots);
    ring.mask = slots - 1;
    for (std::size_t i = 0; i < slots; ++i)
      ring.cells[i].seq.store(i, std::memory_order_relaxed);
  }
}

BufferPool& BufferPool::global() {
  static BufferPool pool;
  return pool;
}

// Vyukov bounded MPMC: each cell carries a sequence number; a
// producer claims the cell whose seq equals its ticket, a consumer
// the cell whose seq equals ticket + 1. Full/empty are detected by
// the seq lagging the ticket — no locks, no spinning beyond the CAS
// retry on a contended ticket.
bool BufferPool::ClassRing::push(std::vector<std::byte>& v) {
  std::size_t pos = enqueue_pos.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells[pos & mask];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::ptrdiff_t>(seq) -
                      static_cast<std::ptrdiff_t>(pos);
    if (diff == 0) {
      if (enqueue_pos.compare_exchange_weak(pos, pos + 1,
                                            std::memory_order_relaxed))
        break;
    } else if (diff < 0) {
      return false;  // ring full
    } else {
      pos = enqueue_pos.load(std::memory_order_relaxed);
    }
  }
  Cell& cell = cells[pos & mask];
  cell.item = std::move(v);
  cell.seq.store(pos + 1, std::memory_order_release);
  return true;
}

bool BufferPool::ClassRing::pop(std::vector<std::byte>& v) {
  std::size_t pos = dequeue_pos.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells[pos & mask];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::ptrdiff_t>(seq) -
                      static_cast<std::ptrdiff_t>(pos + 1);
    if (diff == 0) {
      if (dequeue_pos.compare_exchange_weak(pos, pos + 1,
                                            std::memory_order_relaxed))
        break;
    } else if (diff < 0) {
      return false;  // ring empty
    } else {
      pos = dequeue_pos.load(std::memory_order_relaxed);
    }
  }
  Cell& cell = cells[pos & mask];
  v = std::move(cell.item);
  cell.seq.store(pos + mask + 1, std::memory_order_release);
  return true;
}

Buffer BufferPool::acquire(std::size_t n) {
  Buffer b;
  const int c = class_for_size(n);
  if (c >= kNumClasses) {
    b.buf_.reserve(n);  // beyond the largest class: unpooled
    return b;
  }
  if (!classes_[c].pop(b.buf_)) b.buf_.reserve(class_bytes(c));
  b.buf_.clear();
  b.pool_ = this;
  return b;
}

void BufferPool::release(std::vector<std::byte> v) {
  const int c = class_for_capacity(v.capacity());
  if (c < 0) return;  // too small to satisfy any class — just free
  v.clear();
  classes_[c].push(v);  // full ring: push fails, v frees on return
}

std::size_t BufferPool::parked() const {
  std::size_t n = 0;
  for (const ClassRing& ring : classes_)
    n += ring.enqueue_pos.load(std::memory_order_relaxed) -
         ring.dequeue_pos.load(std::memory_order_relaxed);
  return n;
}

}  // namespace lss::mp
