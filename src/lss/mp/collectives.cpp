#include "lss/mp/collectives.hpp"

#include <algorithm>

#include "lss/support/assert.hpp"

namespace lss::mp {

namespace {

constexpr int kTagBarrierIn = kCollectiveTagBase + 0;
constexpr int kTagBarrierOut = kCollectiveTagBase + 1;
constexpr int kTagBcast = kCollectiveTagBase + 2;
constexpr int kTagGather = kCollectiveTagBase + 3;
constexpr int kTagReduceIn = kCollectiveTagBase + 4;
constexpr int kTagReduceOut = kCollectiveTagBase + 5;

void check_rank(const Comm& comm, int rank) {
  LSS_REQUIRE(rank >= 0 && rank < comm.size(), "rank out of range");
}

double reduce_via_root(Comm& comm, int rank, double value,
                       double (*combine)(double, double)) {
  check_rank(comm, rank);
  if (comm.size() == 1) return value;
  if (rank == 0) {
    double acc = value;
    for (int i = 1; i < comm.size(); ++i) {
      const Message m = comm.recv(0, kAnySource, kTagReduceIn);
      PayloadReader rd(m.payload);
      acc = combine(acc, rd.get_f64());
    }
    for (int r = 1; r < comm.size(); ++r) {
      PayloadWriter w;
      w.put_f64(acc);
      comm.send(0, r, kTagReduceOut, w.take());
    }
    return acc;
  }
  PayloadWriter w;
  w.put_f64(value);
  comm.send(rank, 0, kTagReduceIn, w.take());
  const Message m = comm.recv(rank, 0, kTagReduceOut);
  PayloadReader rd(m.payload);
  return rd.get_f64();
}

}  // namespace

void barrier(Comm& comm, int rank) {
  check_rank(comm, rank);
  if (comm.size() == 1) return;
  if (rank == 0) {
    for (int i = 1; i < comm.size(); ++i)
      comm.recv(0, kAnySource, kTagBarrierIn);
    for (int r = 1; r < comm.size(); ++r)
      comm.send(0, r, kTagBarrierOut, {});
    return;
  }
  comm.send(rank, 0, kTagBarrierIn, {});
  comm.recv(rank, 0, kTagBarrierOut);
}

std::vector<std::byte> broadcast(Comm& comm, int rank, int root,
                                 std::vector<std::byte> payload) {
  check_rank(comm, rank);
  check_rank(comm, root);
  if (rank == root) {
    for (int r = 0; r < comm.size(); ++r)
      if (r != root) comm.send(root, r, kTagBcast, payload);
    return payload;
  }
  Message m = comm.recv(rank, root, kTagBcast);
  return m.payload.take();
}

std::vector<std::vector<std::byte>> gather(Comm& comm, int rank, int root,
                                           std::vector<std::byte> payload) {
  check_rank(comm, rank);
  check_rank(comm, root);
  if (rank != root) {
    comm.send(rank, root, kTagGather, std::move(payload));
    return {};
  }
  std::vector<std::vector<std::byte>> out(
      static_cast<std::size_t>(comm.size()));
  out[static_cast<std::size_t>(root)] = std::move(payload);
  for (int i = 0; i < comm.size() - 1; ++i) {
    Message m = comm.recv(root, kAnySource, kTagGather);
    out[static_cast<std::size_t>(m.source)] = m.payload.take();
  }
  return out;
}

double all_reduce_sum(Comm& comm, int rank, double value) {
  return reduce_via_root(comm, rank, value,
                         [](double a, double b) { return a + b; });
}

double all_reduce_min(Comm& comm, int rank, double value) {
  return reduce_via_root(comm, rank, value,
                         [](double a, double b) { return std::min(a, b); });
}

double all_reduce_max(Comm& comm, int rank, double value) {
  return reduce_via_root(comm, rank, value,
                         [](double a, double b) { return std::max(a, b); });
}

}  // namespace lss::mp
