#include "lss/mp/shm_transport.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "lss/mp/message.hpp"
#include "lss/obs/trace.hpp"
#include "lss/support/assert.hpp"

namespace lss::mp {

namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

int pe_of(int rank) { return rank - 1; }  // master rank 0 -> obs::kMasterPe

milliseconds clamp_ms(Clock::duration d) {
  const auto ms = std::chrono::duration_cast<milliseconds>(d);
  return ms < milliseconds(0) ? milliseconds(0) : ms;
}

/// steady_clock is CLOCK_MONOTONIC on Linux: one epoch for every
/// process on the box, so slot heartbeat timestamps compare directly.
std::uint64_t now_mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Writes `len` raw bytes into `ring`, ringing the consumer's
/// doorbell after every published piece and parking on the ring's
/// space eventcount while full. Returns false when `gone()` reports
/// the consumer dead (bytes may be partially written — the stream is
/// abandoned with its peer, like a TCP send into a reset socket).
template <typename GoneFn>
bool write_bytes_all(ShmRing& ring, Doorbell& consumer_bell,
                     const std::byte* bytes, std::size_t len, int yield_spins,
                     GoneFn gone) {
  std::size_t off = 0;
  while (off < len) {
    const std::uint32_t seen = doorbell_peek(ring.space());
    const std::size_t n = ring.write_some(bytes + off, len - off);
    if (n > 0) {
      off += n;
      doorbell_ring(consumer_bell);
      continue;
    }
    if (gone()) return false;
    doorbell_wait(ring.space(), seen, milliseconds(10), yield_spins);
  }
  return true;
}

/// Sends one frame (header + payload parts) into `ring`. Fast path:
/// the whole frame's space is reserved and the bytes are laid down
/// directly in the ring (reserve/commit — no staging buffer, one
/// doorbell). Frames larger than the ring stream through piecewise.
/// Returns false when the consumer died mid-send.
template <typename GoneFn>
bool write_frame_ring(ShmRing ring, Doorbell& consumer_bell, int source,
                      int tag, std::span<const std::span<const std::byte>> parts,
                      std::uint32_t max_payload, int yield_spins, GoneFn gone) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  LSS_REQUIRE(total <= max_payload, "frame payload exceeds the wire limit");
  std::byte header[kFrameHeaderBytes];
  encode_frame_header(header, source, tag, static_cast<std::uint32_t>(total));
  const std::size_t frame = kFrameHeaderBytes + total;

  if (frame <= ring.capacity()) {
    while (true) {
      const std::uint32_t seen = doorbell_peek(ring.space());
      std::span<std::byte> a, b;
      if (ring.reserve(frame, a, b)) {
        // One cursor across the (possibly wrapped) reservation.
        std::span<std::byte> cur = a;
        auto lay = [&](const std::byte* src, std::size_t n) {
          while (n > 0) {
            if (cur.empty()) {
              cur = b;
              b = {};
            }
            const std::size_t k = std::min(n, cur.size());
            std::memcpy(cur.data(), src, k);
            cur = cur.subspan(k);
            src += k;
            n -= k;
          }
        };
        lay(header, kFrameHeaderBytes);
        for (const auto& p : parts) lay(p.data(), p.size());
        ring.commit(frame);
        doorbell_ring(consumer_bell);
        return true;
      }
      if (gone()) return false;
      doorbell_wait(ring.space(), seen, milliseconds(10), yield_spins);
    }
  }

  // Frame larger than the ring: stream it (the consumer's
  // RingFrameReader reassembles, like short reads on a socket).
  if (!write_bytes_all(ring, consumer_bell, header, kFrameHeaderBytes,
                       yield_spins, gone))
    return false;
  for (const auto& p : parts)
    if (!write_bytes_all(ring, consumer_bell, p.data(), p.size(), yield_spins,
                         gone))
      return false;
  return true;
}

int resolve_yield_spins(int configured) {
  return configured >= 0 ? configured : default_yield_spins();
}

}  // namespace

// ---------------------------------------------------------------------------
// RingFrameReader

bool RingFrameReader::drain(ShmRing& ring, Mailbox& inbox, int source_rank) {
  bool any = false;
  while (true) {
    if (!in_payload_) {
      const std::size_t got = ring.read_some(
          header_ + header_fill_, kFrameHeaderBytes - header_fill_);
      if (got == 0) break;
      any = true;
      header_fill_ += got;
      if (header_fill_ < kFrameHeaderBytes) continue;
      std::uint32_t len = 0;
      decode_frame_header(header_, len, msg_.tag, msg_.source);
      LSS_REQUIRE(len <= max_payload_,
                  "frame header announces an oversized payload (" +
                      std::to_string(len) + " > " +
                      std::to_string(max_payload_) + " bytes)");
      msg_.payload = BufferPool::global().acquire(len);
      need_ = len;
      header_fill_ = 0;
      in_payload_ = true;
    } else if (need_ > 0) {
      const std::size_t got = ring.read_into(msg_.payload.storage(), need_);
      if (got == 0) break;
      any = true;
      need_ -= got;
    }
    if (in_payload_ && need_ == 0) {
      msg_.source = source_rank;  // the ring says who sent this
      inbox.push(std::move(msg_));
      msg_ = Message{};
      in_payload_ = false;
    }
  }
  return any;
}

// ---------------------------------------------------------------------------
// Master endpoint

ShmMasterTransport::ShmMasterTransport(const std::string& name,
                                       int num_workers, ShmOptions options)
    : options_(options),
      num_workers_(num_workers),
      yield_spins_(resolve_yield_spins(options.yield_spins)),
      seg_(ShmSegment::create(name, num_workers, options.ring_capacity,
                              options.protocol)) {
  peers_.resize(static_cast<std::size_t>(num_workers));
  for (Peer& p : peers_)
    p.reader = RingFrameReader(options_.max_frame_payload);
}

ShmMasterTransport::~ShmMasterTransport() = default;

void ShmMasterTransport::accept_workers() {
  const auto deadline = Clock::now() + options_.handshake_timeout;
  while (true) {
    const std::uint32_t seen = doorbell_peek(seg_.header().master_bell);
    int attached = 0;
    for (int w = 0; w < num_workers_; ++w) {
      Peer& peer = peers_[static_cast<std::size_t>(w)];
      if (peer.open) {
        ++attached;
        continue;
      }
      ShmWorkerSlot& slot = seg_.slot(w);
      // Bye counts as arrived: a worker that attached and already
      // detached left its frames and its EOF marker in the ring, and
      // the pump's drain-then-drop path handles them like any other
      // hangup. Only a never-claimed slot is still missing.
      const std::uint32_t state =
          slot.state.load(std::memory_order_acquire);
      if (state == kSlotAttached || state == kSlotBye) {
        peer.open = true;
        peer.protocol = std::min(options_.protocol, slot.protocol);
        peer.last_seen_ns = now_mono_ns();
        ++attached;
      }
    }
    if (attached == num_workers_) return;
    LSS_REQUIRE(Clock::now() < deadline,
                "timed out waiting for " + std::to_string(num_workers_) +
                    " workers (" + std::to_string(attached) + " attached)");
    doorbell_wait(seg_.header().master_bell, seen, milliseconds(50),
                  yield_spins_);
  }
}

void ShmMasterTransport::drop_peer(int w) {
  Peer& peer = peers_[static_cast<std::size_t>(w)];
  peer.open = false;
  ShmWorkerSlot& slot = seg_.slot(w);
  slot.fenced.store(1, std::memory_order_release);
  // Unpark the worker wherever it sleeps — its grant bell or a full
  // upstream ring — so it notices the fence now.
  doorbell_ring(slot.bell);
  doorbell_ring(seg_.to_master_ring(w).space());
}

bool ShmMasterTransport::ingest_peer(int w) {
  Peer& peer = peers_[static_cast<std::size_t>(w)];
  if (!peer.open) return false;
  ShmRing ring = seg_.to_master_ring(w);
  bool activity = false;
  try {
    // The reader streams ring bytes straight into pooled payloads and
    // pushes complete frames into the mailbox, stamped with the slot's
    // rank (the slot, not the frame header, says who sent them).
    activity = peer.reader.drain(ring, inbox_, w + 1);
  } catch (const ContractError&) {
    drop_peer(w);  // framing lost; the stream is unrecoverable
    return true;
  }
  if (activity) peer.last_seen_ns = now_mono_ns();
  // Bye only counts once the ring is drained: the worker's last
  // frames precede its detach.
  if (seg_.slot(w).state.load(std::memory_order_acquire) == kSlotBye &&
      ring.readable() == 0) {
    peer.open = false;
    activity = true;
  }
  return activity;
}

bool ShmMasterTransport::pump(milliseconds wait) {
  // Peek the doorbell *before* scanning the rings: bytes published
  // after the scan bump a sequence we have not seen, so the wait
  // below returns immediately instead of missing them.
  const std::uint32_t seen = doorbell_peek(seg_.header().master_bell);
  bool activity = false;
  for (int w = 0; w < num_workers_; ++w)
    if (ingest_peer(w)) activity = true;
  if (activity || wait.count() == 0) return activity;

  doorbell_wait(seg_.header().master_bell, seen, wait, yield_spins_);
  for (int w = 0; w < num_workers_; ++w)
    if (ingest_peer(w)) activity = true;
  return activity;
}

void ShmMasterTransport::send(int from, int to, int tag, Buffer payload) {
  const std::span<const std::byte> part = payload;
  sendv(from, to, tag, {&part, 1});
}

void ShmMasterTransport::sendv(
    int from, int to, int tag,
    std::span<const std::span<const std::byte>> parts) {
  LSS_REQUIRE(from == 0, "a shm master endpoint only hosts rank 0");
  LSS_REQUIRE(to >= 1 && to <= num_workers_, "destination rank out of range");
  const int w = to - 1;
  Peer& peer = peers_[static_cast<std::size_t>(w)];
  if (!peer.open) return;  // dead peer: surfaced via peer_alive()
  std::int64_t total = 0;
  for (const auto& p : parts) total += static_cast<std::int64_t>(p.size());
  obs::emit(obs::EventKind::MsgSend, obs::kMasterPe, {}, tag, total);
  ShmWorkerSlot& slot = seg_.slot(w);
  const bool ok = write_frame_ring(
      seg_.to_worker_ring(w), slot.bell, 0, tag, parts,
      options_.max_frame_payload, yield_spins_, [&] {
        return slot.state.load(std::memory_order_acquire) == kSlotBye;
      });
  if (!ok) peer.open = false;
}

Message ShmMasterTransport::recv(int rank, int source, int tag) {
  LSS_REQUIRE(rank == 0, "a shm master endpoint only hosts rank 0");
  while (true) {
    if (auto m = inbox_.try_recv(source, tag)) {
      obs::emit(obs::EventKind::MsgRecv, obs::kMasterPe, {}, m->tag,
                pe_of(m->source));
      return std::move(*m);
    }
    pump(milliseconds(50));
  }
}

std::optional<Message> ShmMasterTransport::recv_for(
    int rank, Clock::duration timeout, int source, int tag) {
  LSS_REQUIRE(rank == 0, "a shm master endpoint only hosts rank 0");
  const auto deadline = Clock::now() + timeout;
  while (true) {
    if (auto m = inbox_.try_recv(source, tag)) {
      obs::emit(obs::EventKind::MsgRecv, obs::kMasterPe, {}, m->tag,
                pe_of(m->source));
      return m;
    }
    const auto left = clamp_ms(deadline - Clock::now());
    if (left.count() == 0) return std::nullopt;
    pump(std::min(left, milliseconds(50)));
  }
}

std::optional<Message> ShmMasterTransport::try_recv(int rank, int source,
                                                    int tag) {
  LSS_REQUIRE(rank == 0, "a shm master endpoint only hosts rank 0");
  pump(milliseconds(0));
  return inbox_.try_recv(source, tag);
}

void ShmMasterTransport::drain_into(int rank, std::vector<Message>& out,
                                    int source, int tag) {
  LSS_REQUIRE(rank == 0, "a shm master endpoint only hosts rank 0");
  // One non-blocking pump moves every frame already published in any
  // ring into the mailbox; the mailbox drain then claims the whole
  // ready-set in one lock acquisition.
  pump(milliseconds(0));
  inbox_.drain_into(out, source, tag);
  for (const Message& m : out)
    obs::emit(obs::EventKind::MsgRecv, obs::kMasterPe, {}, m.tag,
              pe_of(m.source));
}

int ShmMasterTransport::peer_protocol(int rank) const {
  if (rank == 0) return options_.protocol;
  LSS_REQUIRE(rank >= 1 && rank <= num_workers_, "rank out of range");
  return peers_[static_cast<std::size_t>(rank - 1)].protocol;
}

bool ShmMasterTransport::probe(int rank, int source, int tag) const {
  LSS_REQUIRE(rank == 0, "a shm master endpoint only hosts rank 0");
  // Reflects frames already pumped off the rings; advisory anyway
  // (see the probe-then-recv note on mp::Transport).
  return inbox_.probe(source, tag);
}

bool ShmMasterTransport::peer_alive(int rank) const {
  if (rank == 0) return true;
  LSS_REQUIRE(rank >= 1 && rank <= num_workers_, "rank out of range");
  const Peer& peer = peers_[static_cast<std::size_t>(rank - 1)];
  if (!peer.open) return false;
  if (options_.liveness_timeout.count() == 0) return true;
  // Heartbeats are timestamp stores, not frames, so recency is a
  // subtraction — a worker off computing a long chunk keeps beating.
  // Data recency covers heartbeat-disabled peers, like TCP's
  // last_seen.
  const std::uint64_t hb = std::max(
      seg_.slot(rank - 1).heartbeat_ns.load(std::memory_order_acquire),
      peer.last_seen_ns);
  const std::uint64_t now = now_mono_ns();
  const auto timeout_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.liveness_timeout)
          .count());
  return now <= hb || now - hb <= timeout_ns;
}

void ShmMasterTransport::close_peer(int rank) {
  LSS_REQUIRE(rank >= 1 && rank <= num_workers_, "rank out of range");
  drop_peer(rank - 1);
}

// ---------------------------------------------------------------------------
// Worker endpoint

ShmWorkerTransport::ShmWorkerTransport(const std::string& name,
                                       ShmOptions options)
    : options_(options),
      yield_spins_(resolve_yield_spins(options.yield_spins)),
      seg_(ShmSegment::attach(name)) {
  ShmSegmentHdr& hdr = seg_.header();
  num_workers_ = static_cast<int>(hdr.num_workers);
  const std::uint32_t slot_idx =
      hdr.next_slot.fetch_add(1, std::memory_order_acq_rel);
  LSS_REQUIRE(slot_idx < hdr.num_workers,
              "shm segment " + name + " has no free worker slots (" +
                  std::to_string(hdr.num_workers) + " already claimed)");
  rank_ = static_cast<int>(slot_idx) + 1;
  negotiated_ = std::min(options_.protocol, hdr.master_protocol);
  reader_ = RingFrameReader(options_.max_frame_payload);

  ShmWorkerSlot& slot = seg_.slot(static_cast<int>(slot_idx));
  slot.protocol = options_.protocol;
  slot.pid = static_cast<std::int32_t>(::getpid());
  slot.heartbeat_ns.store(now_mono_ns(), std::memory_order_release);
  slot.state.store(kSlotAttached, std::memory_order_release);
  doorbell_ring(hdr.master_bell);
  open_.store(true, std::memory_order_release);

  if (options_.heartbeat_period.count() > 0)
    heartbeat_ = std::thread(&ShmWorkerTransport::heartbeat_main, this);
}

ShmWorkerTransport::~ShmWorkerTransport() {
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  if (rank_ >= 1) {
    // The shm EOF: the master drops the peer once the upstream ring
    // drains past this marker.
    seg_.slot(rank_ - 1).state.store(kSlotBye, std::memory_order_release);
    doorbell_ring(seg_.header().master_bell);
  }
}

void ShmWorkerTransport::heartbeat_main() {
  std::unique_lock<std::mutex> lock(hb_mu_);
  while (!hb_stop_) {
    hb_cv_.wait_for(lock, options_.heartbeat_period);
    if (hb_stop_ || !open_.load(std::memory_order_acquire)) continue;
    seg_.slot(rank_ - 1).heartbeat_ns.store(now_mono_ns(),
                                            std::memory_order_release);
  }
}

bool ShmWorkerTransport::master_gone() const {
  if (seg_.header().closed.load(std::memory_order_acquire) != 0) return true;
  if (seg_.slot(rank_ - 1).fenced.load(std::memory_order_acquire) != 0)
    return true;
  return seg_.owner_dead();
}

bool ShmWorkerTransport::ingest() {
  ShmRing ring = seg_.to_worker_ring(rank_ - 1);
  bool activity = false;
  try {
    // Everything inbound is from the master: stamp source 0.
    activity = reader_.drain(ring, inbox_, 0);
  } catch (const ContractError&) {
    open_.store(false, std::memory_order_release);
    return true;
  }
  if (master_gone() && ring.readable() == 0)
    open_.store(false, std::memory_order_release);
  return activity;
}

bool ShmWorkerTransport::pump(milliseconds wait) {
  if (!open_.load(std::memory_order_acquire)) {
    // Connection gone; still honor the wait so deadline loops do not
    // spin (mirrors the TCP worker pump).
    if (wait.count() > 0) std::this_thread::sleep_for(wait);
    return false;
  }
  const std::uint32_t seen = doorbell_peek(seg_.slot(rank_ - 1).bell);
  bool activity = ingest();
  if (activity || wait.count() == 0) return activity;
  doorbell_wait(seg_.slot(rank_ - 1).bell, seen, wait, yield_spins_);
  return ingest();
}

void ShmWorkerTransport::send(int from, int to, int tag, Buffer payload) {
  const std::span<const std::byte> part = payload;
  sendv(from, to, tag, {&part, 1});
}

void ShmWorkerTransport::sendv(
    int from, int to, int tag,
    std::span<const std::span<const std::byte>> parts) {
  LSS_REQUIRE(from == rank_, "a shm worker endpoint only hosts its own rank");
  LSS_REQUIRE(to == 0, "workers only talk to the master (rank 0)");
  if (!open_.load(std::memory_order_acquire)) return;
  std::int64_t total = 0;
  for (const auto& p : parts) total += static_cast<std::int64_t>(p.size());
  obs::emit(obs::EventKind::MsgSend, pe_of(rank_), {}, tag, total);
  const bool ok = write_frame_ring(
      seg_.to_master_ring(rank_ - 1), seg_.header().master_bell, rank_, tag,
      parts, options_.max_frame_payload, yield_spins_,
      [this] { return master_gone(); });
  if (!ok) open_.store(false, std::memory_order_release);
}

Message ShmWorkerTransport::recv(int rank, int source, int tag) {
  LSS_REQUIRE(rank == rank_, "a shm worker endpoint only hosts its own rank");
  while (true) {
    if (auto m = inbox_.try_recv(source, tag)) {
      obs::emit(obs::EventKind::MsgRecv, pe_of(rank_), {}, m->tag,
                pe_of(m->source));
      return std::move(*m);
    }
    LSS_REQUIRE(open_.load(std::memory_order_acquire) || inbox_.pending() > 0,
                "master connection lost while blocked in recv");
    pump(milliseconds(50));
  }
}

std::optional<Message> ShmWorkerTransport::recv_for(
    int rank, Clock::duration timeout, int source, int tag) {
  LSS_REQUIRE(rank == rank_, "a shm worker endpoint only hosts its own rank");
  const auto deadline = Clock::now() + timeout;
  while (true) {
    if (auto m = inbox_.try_recv(source, tag)) {
      obs::emit(obs::EventKind::MsgRecv, pe_of(rank_), {}, m->tag,
                pe_of(m->source));
      return m;
    }
    const auto left = clamp_ms(deadline - Clock::now());
    if (left.count() == 0 || !open_.load(std::memory_order_acquire))
      return std::nullopt;
    pump(std::min(left, milliseconds(50)));
  }
}

std::optional<Message> ShmWorkerTransport::try_recv(int rank, int source,
                                                    int tag) {
  LSS_REQUIRE(rank == rank_, "a shm worker endpoint only hosts its own rank");
  pump(milliseconds(0));
  return inbox_.try_recv(source, tag);
}

void ShmWorkerTransport::drain_into(int rank, std::vector<Message>& out,
                                    int source, int tag) {
  LSS_REQUIRE(rank == rank_, "a shm worker endpoint only hosts its own rank");
  pump(milliseconds(0));
  inbox_.drain_into(out, source, tag);
  for (const Message& m : out)
    obs::emit(obs::EventKind::MsgRecv, pe_of(rank_), {}, m.tag,
              pe_of(m.source));
}

int ShmWorkerTransport::peer_protocol(int rank) const {
  if (rank == rank_) return options_.protocol;
  LSS_REQUIRE(rank == 0, "workers only negotiate with the master");
  return negotiated_;
}

bool ShmWorkerTransport::probe(int rank, int source, int tag) const {
  LSS_REQUIRE(rank == rank_, "a shm worker endpoint only hosts its own rank");
  return inbox_.probe(source, tag);
}

bool ShmWorkerTransport::peer_alive(int rank) const {
  if (rank == rank_) return true;
  LSS_REQUIRE(rank == 0, "workers only track the master's liveness");
  return open_.load(std::memory_order_acquire) && !master_gone();
}

void ShmWorkerTransport::close_peer(int rank) {
  LSS_REQUIRE(rank == 0, "workers only hold a link to the master");
  if (open_.exchange(false, std::memory_order_acq_rel) && rank_ >= 1) {
    seg_.slot(rank_ - 1).state.store(kSlotBye, std::memory_order_release);
    doorbell_ring(seg_.header().master_bell);
  }
}

}  // namespace lss::mp
