#include "lss/mp/channel.hpp"

#include <utility>

#include "lss/obs/metrics_registry.hpp"
#include "lss/obs/trace.hpp"

namespace lss::mp {

void Mailbox::push(Message m) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(m));
    depth = queue_.size();
  }
  cv_.notify_all();
  if (obs::trace_enabled()) {
    // Registry handles are stable for the process lifetime, so the
    // lookup cost is paid once.
    static obs::Histogram& depth_hist =
        obs::MetricsRegistry::instance().histogram("mp.mailbox.depth");
    depth_hist.observe(static_cast<double>(depth));
  }
}

std::optional<Message> Mailbox::pop_match_locked(int source, int tag) {
  for (Message* it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->matches(source, tag)) {
      if (it == queue_.begin()) return queue_.pop_front();
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message Mailbox::recv(int source, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (auto m = pop_match_locked(source, tag)) return std::move(*m);
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::recv_for(
    std::chrono::steady_clock::duration timeout, int source, int tag) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (auto m = pop_match_locked(source, tag)) return m;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout)
      return pop_match_locked(source, tag);
  }
}

std::optional<Message> Mailbox::try_recv(int source, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  return pop_match_locked(source, tag);
}

void Mailbox::drain_into(std::vector<Message>& out, int source, int tag) {
  out.clear();
  std::lock_guard<std::mutex> lock(mu_);
  if (source == kAnySource && tag == kAnyTag) {
    // Common case (reactor ready-set): take everything in order.
    while (!queue_.empty()) out.push_back(queue_.pop_front());
    return;
  }
  // Index into the live range: erase may compact the underlying
  // storage (pointer-invalidating), but logical positions are stable.
  std::size_t i = 0;
  while (i < queue_.size()) {
    Message* it = queue_.begin() + i;
    if (it->matches(source, tag)) {
      out.push_back(std::move(*it));
      queue_.erase(queue_.begin() + i);
    } else {
      ++i;
    }
  }
}

std::vector<Message> Mailbox::drain(int source, int tag) {
  std::vector<Message> out;
  drain_into(out, source, tag);
  return out;
}

bool Mailbox::probe(int source, int tag) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Message& m : queue_)
    if (m.matches(source, tag)) return true;
  return false;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace lss::mp
