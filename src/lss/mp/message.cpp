#include "lss/mp/message.hpp"

#include <cstring>

#include "lss/support/assert.hpp"

namespace lss::mp {

void PayloadWriter::put_bytes(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  buf_.insert(buf_.end(), b, b + n);
}

PayloadWriter& PayloadWriter::put_i64(std::int64_t v) {
  put_bytes(&v, sizeof v);
  return *this;
}

PayloadWriter& PayloadWriter::put_i32(std::int32_t v) {
  put_bytes(&v, sizeof v);
  return *this;
}

PayloadWriter& PayloadWriter::put_f64(double v) {
  put_bytes(&v, sizeof v);
  return *this;
}

PayloadWriter& PayloadWriter::put_range(Range r) {
  return put_i64(r.begin).put_i64(r.end);
}

PayloadWriter& PayloadWriter::put_blob(const std::vector<std::byte>& blob) {
  put_i64(static_cast<std::int64_t>(blob.size()));
  put_bytes(blob.data(), blob.size());
  return *this;
}

PayloadWriter& PayloadWriter::put_string(const std::string& s) {
  put_i64(static_cast<std::int64_t>(s.size()));
  put_bytes(s.data(), s.size());
  return *this;
}

void PayloadReader::get_bytes(void* p, std::size_t n) {
  LSS_REQUIRE(pos_ + n <= buf_.size(), "payload underrun");
  std::memcpy(p, buf_.data() + pos_, n);
  pos_ += n;
}

std::int64_t PayloadReader::get_i64() {
  std::int64_t v = 0;
  get_bytes(&v, sizeof v);
  return v;
}

std::int32_t PayloadReader::get_i32() {
  std::int32_t v = 0;
  get_bytes(&v, sizeof v);
  return v;
}

double PayloadReader::get_f64() {
  double v = 0.0;
  get_bytes(&v, sizeof v);
  return v;
}

Range PayloadReader::get_range() {
  Range r;
  r.begin = get_i64();
  r.end = get_i64();
  return r;
}

std::vector<std::byte> PayloadReader::get_blob() {
  const std::int64_t n = get_i64();
  LSS_REQUIRE(n >= 0 && pos_ + static_cast<std::size_t>(n) <= buf_.size(),
              "payload underrun");
  std::vector<std::byte> blob(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                              buf_.begin() +
                                  static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += static_cast<std::size_t>(n);
  return blob;
}

std::string PayloadReader::get_string() {
  const std::vector<std::byte> blob = get_blob();
  return std::string(reinterpret_cast<const char*>(blob.data()), blob.size());
}

}  // namespace lss::mp
