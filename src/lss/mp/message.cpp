#include "lss/mp/message.hpp"

#include <cstring>

#include "lss/support/assert.hpp"

namespace lss::mp {

void PayloadWriter::put_bytes(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  out_->insert(out_->end(), b, b + n);
}

PayloadWriter& PayloadWriter::put_i64(std::int64_t v) {
  put_bytes(&v, sizeof v);
  return *this;
}

PayloadWriter& PayloadWriter::put_i32(std::int32_t v) {
  put_bytes(&v, sizeof v);
  return *this;
}

PayloadWriter& PayloadWriter::put_f64(double v) {
  put_bytes(&v, sizeof v);
  return *this;
}

PayloadWriter& PayloadWriter::put_range(Range r) {
  return put_i64(r.begin).put_i64(r.end);
}

PayloadWriter& PayloadWriter::put_blob(std::span<const std::byte> blob) {
  put_i64(static_cast<std::int64_t>(blob.size()));
  put_bytes(blob.data(), blob.size());
  return *this;
}

PayloadWriter& PayloadWriter::put_string(const std::string& s) {
  put_i64(static_cast<std::int64_t>(s.size()));
  put_bytes(s.data(), s.size());
  return *this;
}

PayloadWriter& PayloadWriter::put_raw(std::span<const std::byte> bytes) {
  put_bytes(bytes.data(), bytes.size());
  return *this;
}

PayloadWriter& PayloadWriter::put_raw(const void* p, std::size_t n) {
  put_bytes(p, n);
  return *this;
}

void PayloadWriter::patch_i64(std::size_t at, std::int64_t v) {
  LSS_REQUIRE(at + sizeof v <= out_->size(), "patch outside written payload");
  std::memcpy(out_->data() + at, &v, sizeof v);
}

void PayloadWriter::patch_i32(std::size_t at, std::int32_t v) {
  LSS_REQUIRE(at + sizeof v <= out_->size(), "patch outside written payload");
  std::memcpy(out_->data() + at, &v, sizeof v);
}

void PayloadWriter::patch_f64(std::size_t at, double v) {
  LSS_REQUIRE(at + sizeof v <= out_->size(), "patch outside written payload");
  std::memcpy(out_->data() + at, &v, sizeof v);
}

std::vector<std::byte> PayloadWriter::take() {
  LSS_REQUIRE(out_ == &own_,
              "take() on an external-buffer writer — the caller owns "
              "the storage");
  return std::move(own_);
}

void PayloadReader::get_bytes(void* p, std::size_t n) {
  LSS_REQUIRE(pos_ + n <= buf_.size(), "payload underrun");
  std::memcpy(p, buf_.data() + pos_, n);
  pos_ += n;
}

std::int64_t PayloadReader::get_i64() {
  std::int64_t v = 0;
  get_bytes(&v, sizeof v);
  return v;
}

std::int32_t PayloadReader::get_i32() {
  std::int32_t v = 0;
  get_bytes(&v, sizeof v);
  return v;
}

double PayloadReader::get_f64() {
  double v = 0.0;
  get_bytes(&v, sizeof v);
  return v;
}

Range PayloadReader::get_range() {
  Range r;
  r.begin = get_i64();
  r.end = get_i64();
  return r;
}

std::int64_t PayloadReader::get_count(std::size_t min_entry_bytes) {
  const std::int64_t n = get_i64();
  LSS_REQUIRE(min_entry_bytes > 0, "element size must be positive");
  LSS_REQUIRE(n >= 0 && static_cast<std::uint64_t>(n) <=
                            remaining() / min_entry_bytes,
              "element count exceeds the payload");
  return n;
}

std::span<const std::byte> PayloadReader::get_blob_view() {
  const std::int64_t n = get_i64();
  LSS_REQUIRE(n >= 0 && pos_ + static_cast<std::size_t>(n) <= buf_.size(),
              "payload underrun");
  std::span<const std::byte> view =
      buf_.subspan(pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return view;
}

std::vector<std::byte> PayloadReader::get_blob() {
  const std::span<const std::byte> view = get_blob_view();
  return std::vector<std::byte>(view.begin(), view.end());
}

std::string PayloadReader::get_string() {
  const std::span<const std::byte> view = get_blob_view();
  return std::string(reinterpret_cast<const char*>(view.data()), view.size());
}

}  // namespace lss::mp
