// Abstract message transport: the master-worker protocol's view of
// "how bytes move between ranks", factored out of the in-process
// communicator so the same request/grant loops drive both threads in
// one address space (lss::mp::Comm) and separate processes over TCP
// (lss::mp::TcpMasterTransport / TcpWorkerTransport).
//
// Addressing follows the paper's mpich convention: rank 0 is the
// master, worker w is rank w + 1. A Transport serves one or more
// *local* ranks: the in-process Comm serves all of them, a TCP
// endpoint serves exactly one (the master endpoint serves rank 0, a
// worker endpoint its own rank). Calls naming a rank the endpoint
// does not host throw lss::ContractError.
//
// ## probe() and the probe-then-recv race
//
// probe(rank, src, tag) answers "was a matching message queued at the
// instant of the call" — it takes no reservation. When several
// threads drain the same rank, a concurrent try_recv can consume the
// message between a probe returning true and the caller's follow-up
// receive, so
//
//     while (!t.probe(r)) spin();          // WRONG: racy + burns CPU
//     Message m = t.recv(r);               // may block after all
//
// is never a correctness primitive, only a heuristic (e.g. MPI_Iprobe
// -style load reporting). Callers that want "receive, but give up
// after a while" must use recv_for(), which performs the matching and
// the dequeue atomically with respect to other receivers and sleeps
// instead of spinning. Event loops that want "everything queued right
// now" use drain(), whose matching and dequeues are one atomic step —
// the ready-set primitive the rt master reactor is built on.
#pragma once

#include <atomic>
#include <chrono>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lss/mp/message.hpp"
#include "lss/support/assert.hpp"

namespace lss::mp {

/// Protocol generations negotiated per connection at handshake time
/// (carried as a trailing hello/hello-ack field that pre-pipeline
/// peers never read and never send, so either side may be old).
/// kProtoLegacy peers speak the original one-request/one-grant
/// exchange only; kProtoPipelined peers additionally understand
/// multi-grant (batched assign) frames and piggy-backed prefetch
/// windows; kProtoHierarchical peers additionally understand the
/// lease frames a root master exchanges with sub-masters
/// (rt/protocol kTagLease*); kProtoMasterless peers additionally
/// understand the fetch-add counter frames and completion reports of
/// the master-less dispatch mode (rt/protocol kTagFetchAdd*,
/// kTagReport — DESIGN.md §14); kProtoService peers additionally
/// understand the job frames a tenant exchanges with a resident
/// lss_serve daemon (svc/protocol kTagJob* — DESIGN.md §15).
/// In-process backends are always
/// current: both ends live in one binary.
inline constexpr int kProtoLegacy = 1;
inline constexpr int kProtoPipelined = 2;
inline constexpr int kProtoHierarchical = 3;
inline constexpr int kProtoMasterless = 4;
inline constexpr int kProtoService = 5;
inline constexpr int kProtoCurrent = kProtoService;

class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Total ranks in the job, master included (workers + 1).
  virtual int size() const = 0;

  /// Short backend name for stats and traces: "inproc", "tcp", ...
  virtual std::string kind() const = 0;

  /// Deliver `payload` to `to`, stamped with `from`. `from` must be a
  /// local rank. Delivery to a dead peer is a silent no-op (the
  /// failure surfaces through peer_alive, not through send). Buffer
  /// converts implicitly from std::vector<std::byte>; hot paths pass
  /// pooled buffers so steady-state sends allocate nothing.
  virtual void send(int from, int to, int tag, Buffer payload) = 0;

  /// Scatter-gather send: delivers the concatenation of `parts` as
  /// one message, without requiring the caller to assemble it. TCP
  /// ships header + parts via writev; the shm backend reserves the
  /// frame's ring space and commits the parts directly into it; the
  /// default gathers into a pooled buffer and calls send(). The
  /// parts are fully consumed before sendv returns (borrow, not
  /// ownership transfer).
  virtual void sendv(int from, int to, int tag,
                     std::span<const std::span<const std::byte>> parts) {
    std::size_t total = 0;
    for (const auto& p : parts) total += p.size();
    Buffer b = BufferPool::global().acquire(total);
    for (const auto& p : parts)
      b.storage().insert(b.storage().end(), p.begin(), p.end());
    send(from, to, tag, std::move(b));
  }

  /// Blocking receive of the earliest message for local rank `rank`
  /// matching the filters (kAnySource / kAnyTag wildcards).
  virtual Message recv(int rank, int source = kAnySource,
                       int tag = kAnyTag) = 0;

  /// Bounded-wait receive: blocks up to `timeout`, returns nullopt on
  /// expiry. This is the deadline primitive the fault-aware master
  /// loop is built on; unlike probe-then-recv it cannot lose a
  /// message to a concurrent receiver.
  virtual std::optional<Message> recv_for(
      int rank, std::chrono::steady_clock::duration timeout,
      int source = kAnySource, int tag = kAnyTag) = 0;

  /// Non-blocking receive.
  virtual std::optional<Message> try_recv(int rank,
                                          int source = kAnySource,
                                          int tag = kAnyTag) = 0;

  /// Atomically pops every message queued for `rank` that matches
  /// the filters, in arrival order — the reactor's ready-set. The
  /// matching and all dequeues are indivisible with respect to
  /// concurrent receivers (unlike a probe/try_recv loop, which can
  /// lose or double-claim a message between calls). Backends that
  /// buffer on a socket pump it without blocking first.
  ///
  /// `out` is *replaced* (cleared, capacity kept) — event loops pass
  /// the same vector every iteration and steady-state drains
  /// allocate nothing.
  ///
  /// The default loops try_recv, which is only atomic for a single
  /// receiver; it enforces that contract with an always-on check
  /// that throws lss::ContractError when two threads overlap inside
  /// it (the overlap it can observe — interleavings that miss each
  /// other remain the caller's responsibility, which is exactly why
  /// multi-receiver backends must override with a one-lock drain,
  /// as the mailbox-backed ones do).
  virtual void drain_into(int rank, std::vector<Message>& out,
                          int source = kAnySource, int tag = kAnyTag) {
    out.clear();
    const int prev = default_drainers_.fetch_add(1, std::memory_order_acq_rel);
    struct Guard {
      std::atomic<int>& n;
      ~Guard() { n.fetch_sub(1, std::memory_order_acq_rel); }
    } guard{default_drainers_};
    LSS_REQUIRE(prev == 0,
                "concurrent drain() on the default try_recv path — this "
                "backend's drain is single-receiver only");
    while (auto m = try_recv(rank, source, tag)) out.push_back(std::move(*m));
  }

  /// Convenience wrapper over drain_into for call sites that want a
  /// fresh vector (cold paths, tests).
  std::vector<Message> drain(int rank, int source = kAnySource,
                             int tag = kAnyTag) {
    std::vector<Message> out;
    drain_into(rank, out, source, tag);
    return out;
  }

  /// Protocol generation negotiated with the peer hosting `rank`
  /// (kProtoLegacy / kProtoPipelined / kProtoHierarchical).
  /// In-process backends are
  /// always kProtoCurrent; socket backends report what the
  /// hello/hello-ack handshake agreed on, which callers must consult
  /// before sending any frame a legacy peer would not understand.
  virtual int peer_protocol(int rank) const {
    (void)rank;
    return kProtoCurrent;
  }

  /// True if a matching message was queued at the instant of the
  /// call. Advisory only — see the probe-then-recv note above.
  virtual bool probe(int rank, int source = kAnySource,
                     int tag = kAnyTag) const = 0;

  /// Liveness of the peer hosting `rank`, as far as the backend can
  /// tell: the in-process transport always says true (threads do not
  /// fail-stop underneath it); the TCP master combines socket state
  /// with heartbeat recency. A false is definitive, a true is only
  /// "no evidence of death yet".
  virtual bool peer_alive(int rank) const { return rank < size(); }

  /// Severs the link to `rank` (no-op where that has no meaning).
  /// The fault-aware master calls this after declaring a worker dead
  /// so a wedged-but-alive process cannot rejoin the protocol.
  virtual void close_peer(int rank) { (void)rank; }

 protected:
  Transport() = default;

 private:
  // Observes overlapping default-path drains (see drain_into).
  std::atomic<int> default_drainers_{0};
};

}  // namespace lss::mp
