// MPI-style collective operations over an lss::mp::Comm — barrier,
// broadcast, gather and all-reduce — built from tagged point-to-point
// messages (rank 0 is the root/coordinator, as in the runtime).
//
// Every participating rank must call the same collective; calls on
// the same communicator must not interleave different collectives
// concurrently from the same rank (the usual MPI rule). Internal
// messages use a reserved tag range (>= kCollectiveTagBase) that
// user code must avoid.
#pragma once

#include <cstdint>
#include <vector>

#include "lss/mp/comm.hpp"

namespace lss::mp {

inline constexpr int kCollectiveTagBase = 1 << 20;

/// Blocks until every rank of `comm` has entered the barrier.
void barrier(Comm& comm, int rank);

/// Root's payload is delivered to every rank (returned unchanged on
/// the root itself).
std::vector<std::byte> broadcast(Comm& comm, int rank, int root,
                                 std::vector<std::byte> payload);

/// Every rank contributes a payload; the root receives all of them
/// ordered by rank (non-roots get an empty vector).
std::vector<std::vector<std::byte>> gather(Comm& comm, int rank, int root,
                                           std::vector<std::byte> payload);

/// Sum-all-reduce of a double: every rank receives the global sum.
double all_reduce_sum(Comm& comm, int rank, double value);

/// Min/max all-reduce of a double.
double all_reduce_min(Comm& comm, int rank, double value);
double all_reduce_max(Comm& comm, int rank, double value);

}  // namespace lss::mp
