#include "lss/mp/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "lss/mp/message.hpp"
#include "lss/obs/trace.hpp"
#include "lss/support/assert.hpp"

namespace lss::mp {

namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

// Reserved control tags; never delivered to users. Negative so the
// whole non-negative tag space stays free for protocols above.
constexpr int kTagHello = -100;
constexpr int kTagHelloAck = -101;
constexpr int kTagHeartbeat = -102;

constexpr std::int32_t kWireMagic = 0x4C535331;  // "LSS1"
constexpr std::int32_t kWireVersion = 1;

int pe_of(int rank) { return rank - 1; }  // master rank 0 -> obs::kMasterPe

milliseconds clamp_ms(Clock::duration d) {
  const auto ms = std::chrono::duration_cast<milliseconds>(d);
  return ms < milliseconds(0) ? milliseconds(0) : ms;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Writes the whole buffer; false on any error (EPIPE included —
/// MSG_NOSIGNAL keeps a dead peer from killing the process).
bool write_all(int fd, const std::vector<std::byte>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Scatter-gather cap: 12-byte header + up to 15 payload spans per
/// frame. Every runtime frame today is 1–2 spans; callers with more
/// gather first (Transport::sendv default).
constexpr std::size_t kMaxSendParts = 15;

/// Writes one frame as [header | parts...] via sendmsg — the frame
/// never exists contiguously in user space. Handles partial writes
/// by advancing the iovec window; false when the connection is gone.
bool write_frame_sgv(int fd, int source, int tag,
                     std::span<const std::span<const std::byte>> parts,
                     std::uint32_t max_payload) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  LSS_REQUIRE(total <= max_payload, "frame payload exceeds the wire limit");
  std::byte header[kFrameHeaderBytes];
  encode_frame_header(header, source, tag, static_cast<std::uint32_t>(total));

  iovec iov[1 + kMaxSendParts];
  iov[0] = {header, kFrameHeaderBytes};
  std::size_t cnt = 1;
  for (const auto& p : parts) {
    if (p.empty()) continue;
    iov[cnt++] = {const_cast<std::byte*>(p.data()), p.size()};
  }

  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = cnt;
  while (msg.msg_iovlen > 0) {
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    while (n > 0 && msg.msg_iovlen > 0) {
      if (static_cast<std::size_t>(n) >= msg.msg_iov[0].iov_len) {
        n -= static_cast<ssize_t>(msg.msg_iov[0].iov_len);
        ++msg.msg_iov;
        --msg.msg_iovlen;
      } else {
        msg.msg_iov[0].iov_base =
            static_cast<char*>(msg.msg_iov[0].iov_base) + n;
        msg.msg_iov[0].iov_len -= static_cast<std::size_t>(n);
        n = 0;
      }
    }
  }
  return true;
}

/// Non-blocking drain of `fd` into `decoder`. Returns false exactly
/// when the connection is gone (EOF or hard error); oversized-frame
/// protocol violations also count as gone.
bool drain_fd(int fd, FrameDecoder& decoder) {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      try {
        decoder.feed(reinterpret_cast<const std::byte*>(buf),
                     static_cast<std::size_t>(n));
      } catch (const ContractError&) {
        return false;  // framing lost; connection unrecoverable
      }
      continue;
    }
    if (n == 0) return false;  // orderly shutdown
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

bool poll_readable(int fd, milliseconds wait) {
  pollfd pfd{fd, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(wait.count()));
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

// Hellos and acks keep the original two leading fields untouched
// (legacy peers LSS_REQUIRE version == 1) and append the protocol
// generation as a *trailing* i32: legacy decoders stop reading
// before it, so a missing trailer means "kProtoLegacy peer" and an
// extra trailer is invisible to old code. That asymmetry is the
// whole negotiation.
std::vector<std::byte> hello_payload(int protocol) {
  PayloadWriter w;
  w.put_i32(kWireMagic);
  w.put_i32(kWireVersion);
  if (protocol > kProtoLegacy) w.put_i32(protocol);
  return w.take();
}

/// The trailing protocol field of a hello/ack, after `rd` consumed
/// the fixed fields; absent = legacy peer.
int read_protocol_trailer(PayloadReader& rd) {
  if (rd.exhausted()) return kProtoLegacy;
  const int proto = rd.get_i32();
  return proto < kProtoLegacy ? kProtoLegacy : proto;
}

}  // namespace

// ---------------------------------------------------------------------------
// Master endpoint

TcpMasterTransport::TcpMasterTransport(std::uint16_t port, int num_workers,
                                       TcpOptions options)
    : options_(options), num_workers_(num_workers) {
  LSS_REQUIRE(num_workers >= 1, "TCP master needs at least one worker");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  LSS_REQUIRE(listen_fd_ >= 0, "socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, num_workers) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    LSS_REQUIRE(false, std::string("bind/listen failed: ") +
                           std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  peers_.resize(static_cast<std::size_t>(num_workers));
}

TcpMasterTransport::~TcpMasterTransport() {
  for (Peer& p : peers_)
    if (p.fd >= 0) ::close(p.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpMasterTransport::accept_workers() {
  const auto deadline = Clock::now() + options_.handshake_timeout;
  for (int w = 0; w < num_workers_; ++w) {
    // Wait for the next connection.
    int fd = -1;
    while (fd < 0) {
      LSS_REQUIRE(Clock::now() < deadline,
                  "timed out waiting for " + std::to_string(num_workers_) +
                      " workers (" + std::to_string(w) + " connected)");
      if (!poll_readable(listen_fd_, milliseconds(50))) continue;
      fd = ::accept(listen_fd_, nullptr, nullptr);
    }
    set_nodelay(fd);
    Peer& peer = peers_[static_cast<std::size_t>(w)];
    peer.fd = fd;
    peer.decoder = FrameDecoder(options_.max_frame_payload);

    // Expect the hello before admitting the worker to the job.
    std::optional<Message> hello;
    while (!hello) {
      LSS_REQUIRE(Clock::now() < deadline,
                  "timed out waiting for a worker's hello");
      if (poll_readable(fd, milliseconds(50)))
        LSS_REQUIRE(drain_fd(fd, peer.decoder),
                    "worker connection lost during handshake");
      hello = peer.decoder.next();
    }
    PayloadReader rd(hello->payload);
    LSS_REQUIRE(hello->tag == kTagHello && rd.get_i32() == kWireMagic &&
                    rd.get_i32() == kWireVersion,
                "peer is not an lss worker (bad hello)");
    peer.protocol = std::min(options_.protocol, read_protocol_trailer(rd));

    PayloadWriter ack;
    ack.put_i32(kWireMagic);
    ack.put_i32(kWireVersion);
    ack.put_i32(w + 1);           // assigned rank
    ack.put_i32(num_workers_);
    if (peer.protocol > kProtoLegacy) ack.put_i32(peer.protocol);
    LSS_REQUIRE(write_all(fd, encode_frame(0, kTagHelloAck, ack.take(),
                                           options_.max_frame_payload)),
                "failed to send hello-ack");
    peer.open = true;
    peer.last_seen = Clock::now();
  }
}

void TcpMasterTransport::drop_peer(Peer& peer) {
  if (peer.fd >= 0) {
    ::shutdown(peer.fd, SHUT_RDWR);
    ::close(peer.fd);
    peer.fd = -1;
  }
  peer.open = false;
}

bool TcpMasterTransport::flush_decoder(int w) {
  Peer& peer = peers_[static_cast<std::size_t>(w)];
  bool activity = false;
  while (auto m = peer.decoder.next()) {
    peer.last_seen = Clock::now();
    activity = true;
    if (m->tag == kTagHeartbeat) continue;
    // The connection, not the frame header, is the source of truth
    // for who sent this.
    m->source = w + 1;
    inbox_.push(std::move(*m));
  }
  return activity;
}

bool TcpMasterTransport::pump(milliseconds wait) {
  // A previous read may have left whole frames buffered in a
  // decoder (e.g. a drain that slurped two frames of which only one
  // was popped); the socket shows no data for those, so flush before
  // blocking in poll or they'd sit until the next unrelated read.
  bool flushed = false;
  for (int w = 0; w < num_workers_; ++w)
    if (peers_[static_cast<std::size_t>(w)].open && flush_decoder(w))
      flushed = true;
  if (flushed) return true;

  std::vector<pollfd> fds;
  std::vector<int> owner;
  for (int w = 0; w < num_workers_; ++w) {
    const Peer& p = peers_[static_cast<std::size_t>(w)];
    if (p.open) {
      fds.push_back({p.fd, POLLIN, 0});
      owner.push_back(w);
    }
  }
  if (fds.empty()) {
    // Every peer is gone; still honor the wait so callers' deadline
    // loops do not spin.
    if (wait.count() > 0) std::this_thread::sleep_for(wait);
    return false;
  }
  const int rc = ::poll(fds.data(), fds.size(),
                        static_cast<int>(wait.count()));
  if (rc <= 0) return false;
  bool activity = false;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    Peer& peer = peers_[static_cast<std::size_t>(owner[i])];
    const bool still_open = drain_fd(peer.fd, peer.decoder);
    if (flush_decoder(owner[i])) activity = true;
    if (!still_open) {
      drop_peer(peer);
      activity = true;
    }
  }
  return activity;
}

void TcpMasterTransport::send(int from, int to, int tag, Buffer payload) {
  const std::span<const std::byte> part = payload.view();
  sendv(from, to, tag, {&part, 1});
}

void TcpMasterTransport::sendv(
    int from, int to, int tag,
    std::span<const std::span<const std::byte>> parts) {
  LSS_REQUIRE(from == 0, "a TCP master endpoint only hosts rank 0");
  LSS_REQUIRE(to >= 1 && to <= num_workers_, "destination rank out of range");
  if (parts.size() > kMaxSendParts) {
    Transport::sendv(from, to, tag, parts);  // gather fallback
    return;
  }
  Peer& peer = peers_[static_cast<std::size_t>(to - 1)];
  if (!peer.open) return;  // dead peer: surfaced via peer_alive()
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  obs::emit(obs::EventKind::MsgSend, obs::kMasterPe, {}, tag,
            static_cast<std::int64_t>(total));
  if (!write_frame_sgv(peer.fd, 0, tag, parts, options_.max_frame_payload))
    drop_peer(peer);
}

Message TcpMasterTransport::recv(int rank, int source, int tag) {
  LSS_REQUIRE(rank == 0, "a TCP master endpoint only hosts rank 0");
  while (true) {
    if (auto m = inbox_.try_recv(source, tag)) {
      obs::emit(obs::EventKind::MsgRecv, obs::kMasterPe, {}, m->tag,
                pe_of(m->source));
      return std::move(*m);
    }
    pump(milliseconds(50));
  }
}

std::optional<Message> TcpMasterTransport::recv_for(
    int rank, Clock::duration timeout, int source, int tag) {
  LSS_REQUIRE(rank == 0, "a TCP master endpoint only hosts rank 0");
  const auto deadline = Clock::now() + timeout;
  while (true) {
    if (auto m = inbox_.try_recv(source, tag)) {
      obs::emit(obs::EventKind::MsgRecv, obs::kMasterPe, {}, m->tag,
                pe_of(m->source));
      return m;
    }
    const auto left = clamp_ms(deadline - Clock::now());
    if (left.count() == 0) return std::nullopt;
    pump(std::min(left, milliseconds(50)));
  }
}

std::optional<Message> TcpMasterTransport::try_recv(int rank, int source,
                                                    int tag) {
  LSS_REQUIRE(rank == 0, "a TCP master endpoint only hosts rank 0");
  pump(milliseconds(0));
  return inbox_.try_recv(source, tag);
}

void TcpMasterTransport::drain_into(int rank, std::vector<Message>& out,
                                    int source, int tag) {
  LSS_REQUIRE(rank == 0, "a TCP master endpoint only hosts rank 0");
  // One non-blocking pump moves every frame already readable on any
  // worker socket into the mailbox; the mailbox drain then claims
  // the whole ready-set in one lock acquisition.
  pump(milliseconds(0));
  inbox_.drain_into(out, source, tag);
  for (const Message& m : out)
    obs::emit(obs::EventKind::MsgRecv, obs::kMasterPe, {}, m.tag,
              pe_of(m.source));
}

int TcpMasterTransport::peer_protocol(int rank) const {
  if (rank == 0) return options_.protocol;
  LSS_REQUIRE(rank >= 1 && rank <= num_workers_, "rank out of range");
  return peers_[static_cast<std::size_t>(rank - 1)].protocol;
}

bool TcpMasterTransport::probe(int rank, int source, int tag) const {
  LSS_REQUIRE(rank == 0, "a TCP master endpoint only hosts rank 0");
  // Reflects frames already pumped off the sockets; advisory anyway
  // (see the probe-then-recv note on mp::Transport).
  return inbox_.probe(source, tag);
}

bool TcpMasterTransport::peer_alive(int rank) const {
  if (rank == 0) return true;
  LSS_REQUIRE(rank >= 1 && rank <= num_workers_, "rank out of range");
  const Peer& peer = peers_[static_cast<std::size_t>(rank - 1)];
  if (!peer.open) return false;
  if (options_.liveness_timeout.count() == 0) return true;
  return Clock::now() - peer.last_seen <= options_.liveness_timeout;
}

void TcpMasterTransport::close_peer(int rank) {
  LSS_REQUIRE(rank >= 1 && rank <= num_workers_, "rank out of range");
  drop_peer(peers_[static_cast<std::size_t>(rank - 1)]);
}

// ---------------------------------------------------------------------------
// Worker endpoint

TcpWorkerTransport::TcpWorkerTransport(const std::string& host,
                                       std::uint16_t port,
                                       TcpOptions options)
    : options_(options) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  LSS_REQUIRE(fd_ >= 0, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  LSS_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
              "not an IPv4 address: " + host);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    LSS_REQUIRE(false, "connect to " + host + ":" + std::to_string(port) +
                           " failed: " + std::strerror(err));
  }
  set_nodelay(fd_);
  decoder_ = FrameDecoder(options_.max_frame_payload);

  LSS_REQUIRE(write_all(fd_, encode_frame(-1, kTagHello,
                                          hello_payload(options_.protocol),
                                          options_.max_frame_payload)),
              "failed to send hello");
  const auto deadline = Clock::now() + options_.handshake_timeout;
  std::optional<Message> ack;
  while (!ack) {
    LSS_REQUIRE(Clock::now() < deadline, "timed out waiting for hello-ack");
    if (poll_readable(fd_, milliseconds(50)))
      LSS_REQUIRE(drain_fd(fd_, decoder_),
                  "connection lost during handshake");
    ack = decoder_.next();
  }
  PayloadReader rd(ack->payload);
  LSS_REQUIRE(ack->tag == kTagHelloAck && rd.get_i32() == kWireMagic &&
                  rd.get_i32() == kWireVersion,
              "peer is not an lss master (bad hello-ack)");
  rank_ = rd.get_i32();
  num_workers_ = rd.get_i32();
  negotiated_ = std::min(options_.protocol, read_protocol_trailer(rd));
  open_.store(true, std::memory_order_release);

  if (options_.heartbeat_period.count() > 0)
    heartbeat_ = std::thread(&TcpWorkerTransport::heartbeat_main, this);
}

TcpWorkerTransport::~TcpWorkerTransport() {
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  if (fd_ >= 0) ::close(fd_);
}

void TcpWorkerTransport::heartbeat_main() {
  std::unique_lock<std::mutex> lock(hb_mu_);
  while (!hb_stop_) {
    hb_cv_.wait_for(lock, options_.heartbeat_period);
    if (hb_stop_ || !open_.load(std::memory_order_acquire)) continue;
    write_frame_locked(kTagHeartbeat, {});
  }
}

void TcpWorkerTransport::write_frame_locked(
    int tag, std::span<const std::span<const std::byte>> parts) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!open_.load(std::memory_order_acquire)) return;
  if (!write_frame_sgv(fd_, rank_, tag, parts, options_.max_frame_payload))
    open_.store(false, std::memory_order_release);
}

bool TcpWorkerTransport::flush_decoder() {
  bool activity = false;
  while (auto m = decoder_.next()) {
    if (m->tag == kTagHeartbeat) continue;
    m->source = 0;  // everything on this socket is from the master
    inbox_.push(std::move(*m));
    activity = true;
  }
  return activity;
}

bool TcpWorkerTransport::pump(milliseconds wait) {
  // Frames left buffered by an earlier over-eager drain (e.g. the
  // handshake reading the hello-ack and the first job in one go)
  // never show up in poll — flush them first.
  if (flush_decoder()) return true;
  if (!open_.load(std::memory_order_acquire)) {
    if (wait.count() > 0) std::this_thread::sleep_for(wait);
    return false;
  }
  if (!poll_readable(fd_, wait)) return false;
  const bool still_open = drain_fd(fd_, decoder_);
  const bool activity = flush_decoder();
  if (!still_open) open_.store(false, std::memory_order_release);
  return activity;
}

void TcpWorkerTransport::send(int from, int to, int tag, Buffer payload) {
  const std::span<const std::byte> part = payload.view();
  sendv(from, to, tag, {&part, 1});
}

void TcpWorkerTransport::sendv(
    int from, int to, int tag,
    std::span<const std::span<const std::byte>> parts) {
  LSS_REQUIRE(from == rank_, "a TCP worker endpoint only hosts its own rank");
  LSS_REQUIRE(to == 0, "workers only talk to the master (rank 0)");
  if (parts.size() > kMaxSendParts) {
    Transport::sendv(from, to, tag, parts);  // gather fallback
    return;
  }
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  obs::emit(obs::EventKind::MsgSend, pe_of(rank_), {}, tag,
            static_cast<std::int64_t>(total));
  write_frame_locked(tag, parts);
}

Message TcpWorkerTransport::recv(int rank, int source, int tag) {
  LSS_REQUIRE(rank == rank_, "a TCP worker endpoint only hosts its own rank");
  while (true) {
    if (auto m = inbox_.try_recv(source, tag)) {
      obs::emit(obs::EventKind::MsgRecv, pe_of(rank_), {}, m->tag,
                pe_of(m->source));
      return std::move(*m);
    }
    LSS_REQUIRE(open_.load(std::memory_order_acquire) || inbox_.pending() > 0,
                "master connection lost while blocked in recv");
    pump(milliseconds(50));
  }
}

std::optional<Message> TcpWorkerTransport::recv_for(
    int rank, Clock::duration timeout, int source, int tag) {
  LSS_REQUIRE(rank == rank_, "a TCP worker endpoint only hosts its own rank");
  const auto deadline = Clock::now() + timeout;
  while (true) {
    if (auto m = inbox_.try_recv(source, tag)) {
      obs::emit(obs::EventKind::MsgRecv, pe_of(rank_), {}, m->tag,
                pe_of(m->source));
      return m;
    }
    const auto left = clamp_ms(deadline - Clock::now());
    if (left.count() == 0 || !open_.load(std::memory_order_acquire))
      return std::nullopt;
    pump(std::min(left, milliseconds(50)));
  }
}

std::optional<Message> TcpWorkerTransport::try_recv(int rank, int source,
                                                    int tag) {
  LSS_REQUIRE(rank == rank_, "a TCP worker endpoint only hosts its own rank");
  pump(milliseconds(0));
  return inbox_.try_recv(source, tag);
}

void TcpWorkerTransport::drain_into(int rank, std::vector<Message>& out,
                                    int source, int tag) {
  LSS_REQUIRE(rank == rank_, "a TCP worker endpoint only hosts its own rank");
  pump(milliseconds(0));
  inbox_.drain_into(out, source, tag);
  for (const Message& m : out)
    obs::emit(obs::EventKind::MsgRecv, pe_of(rank_), {}, m.tag,
              pe_of(m.source));
}

int TcpWorkerTransport::peer_protocol(int rank) const {
  if (rank == rank_) return options_.protocol;
  LSS_REQUIRE(rank == 0, "workers only negotiate with the master");
  return negotiated_;
}

bool TcpWorkerTransport::probe(int rank, int source, int tag) const {
  LSS_REQUIRE(rank == rank_, "a TCP worker endpoint only hosts its own rank");
  return inbox_.probe(source, tag);
}

bool TcpWorkerTransport::peer_alive(int rank) const {
  if (rank == rank_) return true;
  LSS_REQUIRE(rank == 0, "workers only track the master's liveness");
  return open_.load(std::memory_order_acquire);
}

void TcpWorkerTransport::close_peer(int rank) {
  LSS_REQUIRE(rank == 0, "workers only hold a link to the master");
  std::lock_guard<std::mutex> lock(write_mu_);
  if (open_.exchange(false, std::memory_order_acq_rel) && fd_ >= 0)
    ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace lss::mp
