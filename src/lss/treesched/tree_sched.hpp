// Slave-side work pool for Tree Scheduling.
//
// Each TreeS slave owns a pool of iteration ranges: it executes from
// the front and donates to idle partners from the back (the part it
// would reach last), so migrated work is maximally "cold".
#pragma once

#include <vector>

#include "lss/support/types.hpp"

namespace lss::treesched {

class WorkPool {
 public:
  WorkPool() = default;

  /// Appends a range to the back of the pool (ignores empty ranges).
  void add(Range r);

  bool empty() const { return remaining_ == 0; }
  Index remaining() const { return remaining_; }

  /// Next iteration to execute; pool must be non-empty.
  Index pop_front();

  /// Splits `n` iterations off the back (n clamped to remaining());
  /// returns them as ranges ready to hand to a partner.
  std::vector<Range> donate_back(Index n);

  /// Splits `n` iterations off the front (n clamped to remaining()),
  /// in loop order — used by group masters handing out local chunks.
  std::vector<Range> take_front(Index n);

  /// Splits at most `n` iterations off the front as ONE contiguous
  /// range: never crosses a stored-range boundary, so the result can
  /// be granted as a single chunk. Empty pool yields an empty range.
  Range take_front_range(Index n);

  const std::vector<Range>& ranges() const { return ranges_; }

 private:
  std::vector<Range> ranges_;  // executed front-to-back
  Index remaining_ = 0;
};

}  // namespace lss::treesched
