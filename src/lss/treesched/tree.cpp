#include "lss/treesched/tree.hpp"

#include <cmath>

#include "lss/support/assert.hpp"

namespace lss::treesched {

PartnerTree::PartnerTree(int num_pes) : num_pes_(num_pes) {
  LSS_REQUIRE(num_pes >= 1, "need at least one PE");
  partners_.resize(static_cast<std::size_t>(num_pes));
  for (int pe = 0; pe < num_pes; ++pe) {
    for (int bit = 1; bit < 2 * num_pes; bit <<= 1) {
      const int partner = pe ^ bit;
      if (partner < num_pes && partner != pe)
        partners_[static_cast<std::size_t>(pe)].push_back(partner);
    }
  }
}

const std::vector<int>& PartnerTree::partners_of(int pe) const {
  LSS_REQUIRE(pe >= 0 && pe < num_pes_, "PE id out of range");
  return partners_[static_cast<std::size_t>(pe)];
}

std::vector<std::pair<int, int>> PartnerTree::edges() const {
  std::vector<std::pair<int, int>> out;
  for (int pe = 0; pe < num_pes_; ++pe)
    for (int q : partners_[static_cast<std::size_t>(pe)])
      if (pe < q) out.emplace_back(pe, q);
  return out;
}

Index steal_amount(Index victim_remaining, double w_thief, double w_victim) {
  LSS_REQUIRE(victim_remaining >= 0, "negative remaining count");
  LSS_REQUIRE(w_thief > 0.0 && w_victim > 0.0, "weights must be positive");
  if (victim_remaining <= 1) return 0;  // not worth migrating
  const double share = static_cast<double>(victim_remaining) * w_thief /
                       (w_thief + w_victim);
  Index amount = static_cast<Index>(std::floor(share));
  if (amount >= victim_remaining) amount = victim_remaining - 1;
  if (amount < 0) amount = 0;
  return amount;
}

std::vector<Range> initial_allocation(Index total,
                                      const std::vector<double>& weights) {
  LSS_REQUIRE(total >= 0, "iteration count must be non-negative");
  LSS_REQUIRE(!weights.empty(), "need at least one weight");
  double wsum = 0.0;
  for (double w : weights) {
    LSS_REQUIRE(w > 0.0, "weights must be positive");
    wsum += w;
  }
  std::vector<Range> out;
  out.reserve(weights.size());
  Index cursor = 0;
  double acc = 0.0;
  for (std::size_t j = 0; j < weights.size(); ++j) {
    acc += weights[j];
    // Cumulative rounding keeps the partition exact and each range's
    // size within 1 of its ideal share.
    const Index end =
        j + 1 == weights.size()
            ? total
            : static_cast<Index>(std::llround(
                  static_cast<double>(total) * acc / wsum));
    out.push_back(Range{cursor, end});
    cursor = end;
  }
  LSS_ASSERT(cursor == total, "allocation must cover [0, total)");
  return out;
}

}  // namespace lss::treesched
