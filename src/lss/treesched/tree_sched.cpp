#include "lss/treesched/tree_sched.hpp"

#include <algorithm>

#include "lss/support/assert.hpp"

namespace lss::treesched {

void WorkPool::add(Range r) {
  if (r.empty()) return;
  remaining_ += r.size();
  ranges_.push_back(r);
}

Index WorkPool::pop_front() {
  LSS_REQUIRE(!empty(), "pop_front on an empty pool");
  Range& front = ranges_.front();
  const Index i = front.begin++;
  --remaining_;
  if (front.empty()) ranges_.erase(ranges_.begin());
  return i;
}

std::vector<Range> WorkPool::take_front(Index n) {
  LSS_REQUIRE(n >= 0, "cannot take a negative count");
  n = std::min(n, remaining_);
  std::vector<Range> out;
  while (n > 0) {
    Range& front = ranges_.front();
    const Index take = std::min(n, front.size());
    out.push_back(Range{front.begin, front.begin + take});
    front.begin += take;
    remaining_ -= take;
    n -= take;
    if (front.empty()) ranges_.erase(ranges_.begin());
  }
  return out;
}

Range WorkPool::take_front_range(Index n) {
  LSS_REQUIRE(n >= 0, "cannot take a negative count");
  if (empty() || n == 0) return {};
  Range& front = ranges_.front();
  const Index take = std::min(n, front.size());
  const Range out{front.begin, front.begin + take};
  front.begin += take;
  remaining_ -= take;
  if (front.empty()) ranges_.erase(ranges_.begin());
  return out;
}

std::vector<Range> WorkPool::donate_back(Index n) {
  LSS_REQUIRE(n >= 0, "cannot donate a negative count");
  n = std::min(n, remaining_);
  std::vector<Range> out;
  while (n > 0) {
    Range& back = ranges_.back();
    const Index take = std::min(n, back.size());
    out.push_back(Range{back.end - take, back.end});
    back.end -= take;
    remaining_ -= take;
    n -= take;
    if (back.empty()) ranges_.pop_back();
  }
  // Donated pieces were collected back-to-front; restore loop order.
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace lss::treesched
