// Partner topology for Tree Scheduling (Kim & Purtilo 1996).
//
// TreeS avoids master contention: slaves have *predefined partners*
// and migrate load between themselves. We use the standard
// hypercube-style pairing — PE i's partner list is i^1, i^2, i^4, ...
// (dimensions of the enclosing hypercube, invalid ids skipped) —
// which forms the binomial tree the original paper describes.
#pragma once

#include <vector>

#include "lss/support/types.hpp"

namespace lss::treesched {

class PartnerTree {
 public:
  explicit PartnerTree(int num_pes);

  int num_pes() const { return num_pes_; }

  /// Ordered partner list of `pe` (nearest hypercube dimension first).
  const std::vector<int>& partners_of(int pe) const;

  /// All (a, b) partner pairs with a < b, for diagnostics/tests.
  std::vector<std::pair<int, int>> edges() const;

 private:
  int num_pes_;
  std::vector<std::vector<int>> partners_;
};

/// Iterations a thief with weight `w_thief` takes from a victim with
/// weight `w_victim` holding `victim_remaining` iterations:
/// floor(remaining * w_thief / (w_thief + w_victim)). Equal weights
/// give the classic "steal half". Never returns victim_remaining
/// itself unless it is <= 1 (the victim keeps making progress).
Index steal_amount(Index victim_remaining, double w_thief, double w_victim);

/// Contiguous initial ranges proportional to weights (equal weights =
/// the even split of the simple TreeS). The ranges partition [0, I).
std::vector<Range> initial_allocation(Index total,
                                      const std::vector<double>& weights);

}  // namespace lss::treesched
