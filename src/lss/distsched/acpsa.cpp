#include "lss/distsched/acpsa.hpp"

#include "lss/support/assert.hpp"

namespace lss::distsched {

Acpsa::Acpsa(int num_pes)
    : acp_(static_cast<std::size_t>(num_pes), 0.0),
      at_plan_(static_cast<std::size_t>(num_pes), 0.0) {
  LSS_REQUIRE(num_pes >= 1, "need at least one PE");
}

bool Acpsa::update(int pe, double acp) {
  LSS_REQUIRE(pe >= 0 && pe < num_pes(), "PE id out of range");
  LSS_REQUIRE(acp >= 0.0, "ACP cannot be negative");
  const auto idx = static_cast<std::size_t>(pe);
  const bool changed = acp_[idx] != acp;
  acp_[idx] = acp;
  return changed;
}

double Acpsa::get(int pe) const {
  LSS_REQUIRE(pe >= 0 && pe < num_pes(), "PE id out of range");
  return acp_[static_cast<std::size_t>(pe)];
}

double Acpsa::total() const {
  double a = 0.0;
  for (double v : acp_) a += v;
  return a;
}

int Acpsa::num_available() const {
  int n = 0;
  for (double v : acp_)
    if (v > 0.0) ++n;
  return n;
}

int Acpsa::num_changed_since_plan() const {
  int n = 0;
  for (std::size_t i = 0; i < acp_.size(); ++i)
    if (acp_[i] != at_plan_[i]) ++n;
  return n;
}

bool Acpsa::majority_changed() const {
  return 2 * num_changed_since_plan() > num_pes();
}

void Acpsa::mark_planned() { at_plan_ = acp_; }

}  // namespace lss::distsched
