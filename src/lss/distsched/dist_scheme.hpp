// Distributed self-scheduling schemes (paper §3.1 and §6).
//
// A DistScheduler follows the DTSS master pattern: slaves piggy-back
// their current available computing power A_i on every request; the
// master keeps an ACP Status Array, hands out chunks proportional to
// the requester's power, and replans over the remaining iterations
// whenever more than half of the A_i changed.
//
// The stage-based schemes share the paper's §6 rule:
//     C_j^k = SC_k * A_j / A
// where SC_k is the stage total that the underlying simple scheme
// would assign at stage k.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lss/distsched/acpsa.hpp"
#include "lss/support/types.hpp"

namespace lss::distsched {

using lss::Index;
using lss::Range;

class DistScheduler {
 public:
  DistScheduler(Index total, int num_pes);
  virtual ~DistScheduler() = default;

  DistScheduler(const DistScheduler&) = delete;
  DistScheduler& operator=(const DistScheduler&) = delete;

  virtual std::string name() const = 0;

  /// Paper Master step 1a: all available slaves report A_i once;
  /// computes the initial plan. Must be called before next().
  void initialize(const std::vector<double>& initial_acps);

  /// Serve a request from `pe` reporting its current `acp` (> 0).
  /// Returns an empty range once all iterations are assigned.
  Range next(int pe, double acp);

  /// Optional execution feedback: `pe` finished `iterations` loop
  /// iterations in `seconds` of wall time. Hosts (the simulator and
  /// the threaded runtime) call this before next() when the slave
  /// piggy-backs timing on its request. Rate-adaptive schemes (AWF)
  /// override; the ACP-based schemes ignore it.
  virtual void on_feedback(int pe, Index iterations, double seconds);

  Index total() const { return total_; }
  int num_pes() const { return num_pes_; }
  Index assigned() const { return cursor_; }
  Index remaining() const { return total_ - cursor_; }
  bool done() const { return cursor_ >= total_; }
  Index steps() const { return steps_; }
  /// Times the master replanned after initialization (step 2c).
  int replans() const { return replans_; }
  bool initialized() const { return initialized_; }

  /// Replaces every stored A_i at once and replans over the
  /// remaining iterations — the paper's step-2c replan promoted to a
  /// typed hook (the adaptive layer and SiL experiments drive it).
  /// Counted in replans(). Requires initialize() first.
  void update_acp(const std::vector<double>& acps);

  /// Disable the step-2c majority-change replanning (for ablation:
  /// the ACPSA still tracks fresh A_i, but scheme parameters stay
  /// fixed after the initial plan).
  void set_replanning(bool enabled) { replanning_ = enabled; }
  bool replanning() const { return replanning_; }

  const Acpsa& acpsa() const { return acpsa_; }

 protected:
  Acpsa& acpsa() { return acpsa_; }

  /// Recompute scheme parameters for `remaining_total` iterations
  /// using the current ACPSA (paper step 1b). Called by initialize()
  /// and on majority-change replans.
  virtual void plan(Index remaining_total) = 0;

  /// Chunk size for `pe` given the current plan; may exceed
  /// remaining(); values < 1 are raised to 1 by the base class.
  virtual Index propose_chunk(int pe) = 0;

  virtual void on_granted(int pe, Index granted);

 private:
  Index total_;
  int num_pes_;
  Index cursor_ = 0;
  Index steps_ = 0;
  int replans_ = 0;
  bool initialized_ = false;
  bool replanning_ = true;
  Acpsa acpsa_;
};

}  // namespace lss::distsched
