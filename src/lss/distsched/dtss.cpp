#include "lss/distsched/dtss.hpp"

#include <cmath>

#include "lss/support/assert.hpp"

namespace lss::distsched {

DtssScheduler::DtssScheduler(Index total, int num_pes)
    : DistScheduler(total, num_pes) {}

void DtssScheduler::plan(Index remaining_total) {
  const double a = acpsa().total();
  LSS_ASSERT(a > 0.0, "total ACP must be positive to plan");
  params_ = sched::tss_params_real(static_cast<double>(remaining_total), a);
  consumed_slots_ = 0.0;
}

Index DtssScheduler::propose_chunk(int pe) {
  const double ai = acpsa().get(pe);
  LSS_ASSERT(ai > 0.0, "requester must have positive ACP");
  // Sum of the trapezoid heights over the A_i slots starting at S:
  //   sum_{s=0..A_i-1} (F - D*(S+s)) = A_i*F - D*(A_i*S + A_i(A_i-1)/2)
  const double c =
      ai * (params_.first -
            params_.decrement * (consumed_slots_ + (ai - 1.0) / 2.0));
  consumed_slots_ += ai;
  if (c <= 1.0) return 1;
  return static_cast<Index>(std::floor(c));
}

}  // namespace lss::distsched
