#include "lss/distsched/dfss.hpp"

#include <cmath>

#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss::distsched {

DfssScheduler::DfssScheduler(Index total, int num_pes, double alpha)
    : DistScheduler(total, num_pes), alpha_(alpha) {
  LSS_REQUIRE(alpha > 0.0, "alpha must be positive");
}

std::string DfssScheduler::name() const {
  std::string n = "dfss(alpha=";
  n += fmt_fixed(alpha_, 1);
  n += ')';
  return n;
}

void DfssScheduler::plan(Index /*remaining_total*/) {
  // Factoring recomputes from the live remaining count at each stage;
  // a replan simply restarts the current stage.
  stage_left_ = 0;
}

Index DfssScheduler::propose_chunk(int pe) {
  if (stage_left_ == 0) {
    stage_total_ = static_cast<double>(remaining()) / alpha_;
    stage_left_ = num_pes();
  }
  const double a = acpsa().total();
  LSS_ASSERT(a > 0.0, "total ACP must be positive");
  const double share = stage_total_ * acpsa().get(pe) / a;
  return static_cast<Index>(std::ceil(share));
}

void DfssScheduler::on_granted(int /*pe*/, Index /*granted*/) {
  if (stage_left_ > 0) --stage_left_;
}

}  // namespace lss::distsched
