// Distributed Factoring Self-Scheduling (paper §6).
//
// FSS's stage rule with power-proportional splitting: at each stage
// the master earmarks SC_k = R / alpha iterations (alpha = 2) and a
// requester with power A_j receives C_j = SC_k * A_j / A. With equal
// ACPs this reduces exactly to FSS. (The paper prints SC_k = 2R/A,
// which is dimensionally inconsistent — see DESIGN.md errata.)
#pragma once

#include "lss/distsched/dist_scheme.hpp"

namespace lss::distsched {

class DfssScheduler final : public DistScheduler {
 public:
  DfssScheduler(Index total, int num_pes, double alpha = 2.0);

  std::string name() const override;
  double alpha() const { return alpha_; }

 protected:
  void plan(Index remaining_total) override;
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  double alpha_;
  int stage_left_ = 0;
  double stage_total_ = 0.0;  ///< SC_k
};

}  // namespace lss::distsched
