#include "lss/distsched/dfiss.hpp"

#include <cmath>

#include "lss/support/assert.hpp"

namespace lss::distsched {

DfissScheduler::DfissScheduler(Index total, int num_pes, int stages, int x)
    : DistScheduler(total, num_pes),
      sigma_(stages),
      x_(x > 0 ? x : stages + 2) {
  LSS_REQUIRE(stages >= 1, "need at least one stage");
  LSS_REQUIRE(x_ > 0, "X must be positive");
}

std::string DfissScheduler::name() const {
  return "dfiss(sigma=" + std::to_string(sigma_) + ",X=" +
         std::to_string(x_) + ")";
}

void DfissScheduler::plan(Index remaining_total) {
  first_total_ = remaining_total / x_;
  if (first_total_ < 1) first_total_ = 1;
  bump_ = 0;
  if (sigma_ >= 2) {
    const double sig = static_cast<double>(sigma_);
    const double numer = 2.0 * static_cast<double>(remaining_total) *
                         (1.0 - sig / static_cast<double>(x_));
    const double denom = sig * (sig - 1.0);
    const double b = numer / denom;
    bump_ = b > 0.0 ? static_cast<Index>(std::ceil(b)) : 0;
  }
  stage_ = 0;
  stage_left_ = 0;
}

Index DfissScheduler::propose_chunk(int pe) {
  if (stage_left_ == 0) {
    const bool last_stage = stage_ >= sigma_ - 1;
    if (last_stage) {
      stage_total_ = static_cast<double>(remaining());
    } else {
      stage_total_ = static_cast<double>(
          first_total_ + static_cast<Index>(stage_) * bump_);
    }
    stage_left_ = num_pes();
  }
  const double a = acpsa().total();
  LSS_ASSERT(a > 0.0, "total ACP must be positive");
  const double share = stage_total_ * acpsa().get(pe) / a;
  return static_cast<Index>(std::floor(share));
}

void DfissScheduler::on_granted(int /*pe*/, Index /*granted*/) {
  if (--stage_left_ == 0) ++stage_;
}

}  // namespace lss::distsched
