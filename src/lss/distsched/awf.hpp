// Adaptive Weighted Factoring (AWF) — an extension beyond the paper
// in the direction its conclusion points: instead of *asking* slaves
// for their available power (V_i / Q_i), the master *measures* it.
//
// Structure (following Banicescu et al.'s batched AWF variants):
//   * stage 0 is a small *probe* stage — total R/(alpha*probe_factor),
//     split by reported ACP — so every PE returns a timing sample
//     quickly instead of sitting on a full-size first chunk;
//   * later stages use FSS's rule (total = R/alpha) split by adaptive
//     weights: a PE's weight is its measured throughput (cumulative
//     iterations / cumulative compute seconds). PEs that have not
//     reported yet get an estimated rate acp * kappa, where kappa
//     calibrates ACP units to rate units from the PEs that have.
//
// The scheme needs no run-queue introspection: external load shows
// up in the measured rates automatically, and wrong virtual powers
// are corrected after the probe stage.
#pragma once

#include <vector>

#include "lss/distsched/dist_scheme.hpp"

namespace lss::distsched {

class AwfScheduler final : public DistScheduler {
 public:
  AwfScheduler(Index total, int num_pes, double alpha = 2.0,
               double probe_factor = 4.0);

  std::string name() const override;
  void on_feedback(int pe, Index iterations, double seconds) override;

  /// Measured throughput of `pe`; 0 before any feedback.
  double measured_rate(int pe) const;
  bool has_feedback(int pe) const;
  /// Effective weight used for splitting (measured or calibrated).
  double weight(int pe) const;

 protected:
  void plan(Index remaining_total) override;
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  double alpha_;
  double probe_factor_;
  std::vector<Index> iters_done_;
  std::vector<double> time_spent_;
  int stage_ = 0;
  int stage_left_ = 0;
  double stage_total_ = 0.0;
};

}  // namespace lss::distsched
