#include "lss/distsched/weighted_adapter.hpp"

#include <cmath>
#include <utility>

#include "lss/sched/factory.hpp"
#include "lss/support/assert.hpp"

namespace lss::distsched {

WeightedAdapterScheduler::WeightedAdapterScheduler(Index total, int num_pes,
                                                   std::string simple_spec)
    : DistScheduler(total, num_pes), simple_spec_(std::move(simple_spec)) {}

std::string WeightedAdapterScheduler::name() const {
  return "dist(" + simple_spec_ + ")";
}

void WeightedAdapterScheduler::plan(Index /*remaining_total*/) {
  stage_left_ = 0;  // restart the stage from the live remaining count
}

Index WeightedAdapterScheduler::propose_chunk(int pe) {
  if (stage_left_ == 0) {
    // SC_k = what the simple scheme would hand to p PEs next, given
    // the remaining iterations.
    auto simple = sched::make_scheme(simple_spec_, remaining(), num_pes());
    double sum = 0.0;
    for (int j = 0; j < num_pes() && !simple->done(); ++j)
      sum += static_cast<double>(simple->next(j).size());
    stage_total_ = sum;
    stage_left_ = num_pes();
  }
  const double a = acpsa().total();
  LSS_ASSERT(a > 0.0, "total ACP must be positive");
  const double share = stage_total_ * acpsa().get(pe) / a;
  return static_cast<Index>(std::ceil(share));
}

void WeightedAdapterScheduler::on_granted(int /*pe*/, Index /*granted*/) {
  if (stage_left_ > 0) --stage_left_;
}

}  // namespace lss::distsched
