#include "lss/distsched/awf.hpp"

#include <cmath>

#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss::distsched {

AwfScheduler::AwfScheduler(Index total, int num_pes, double alpha,
                           double probe_factor)
    : DistScheduler(total, num_pes),
      alpha_(alpha),
      probe_factor_(probe_factor),
      iters_done_(static_cast<std::size_t>(num_pes), 0),
      time_spent_(static_cast<std::size_t>(num_pes), 0.0) {
  LSS_REQUIRE(alpha > 0.0, "alpha must be positive");
  LSS_REQUIRE(probe_factor >= 1.0, "probe factor must be >= 1");
}

std::string AwfScheduler::name() const {
  std::string n = "awf(alpha=";
  n += fmt_fixed(alpha_, 1);
  n += ')';
  return n;
}

void AwfScheduler::on_feedback(int pe, Index iterations, double seconds) {
  LSS_REQUIRE(pe >= 0 && pe < num_pes(), "PE id out of range");
  LSS_REQUIRE(iterations >= 0, "negative iteration count");
  LSS_REQUIRE(seconds >= 0.0, "negative duration");
  iters_done_[static_cast<std::size_t>(pe)] += iterations;
  time_spent_[static_cast<std::size_t>(pe)] += seconds;
}

bool AwfScheduler::has_feedback(int pe) const {
  LSS_REQUIRE(pe >= 0 && pe < num_pes(), "PE id out of range");
  return iters_done_[static_cast<std::size_t>(pe)] > 0 &&
         time_spent_[static_cast<std::size_t>(pe)] > 0.0;
}

double AwfScheduler::measured_rate(int pe) const {
  if (!has_feedback(pe)) return 0.0;
  return static_cast<double>(iters_done_[static_cast<std::size_t>(pe)]) /
         time_spent_[static_cast<std::size_t>(pe)];
}

double AwfScheduler::weight(int pe) const {
  if (has_feedback(pe)) return measured_rate(pe);
  // Calibrate ACP units into rate units using the PEs that have
  // reported: kappa = sum(rates) / sum(their ACPs).
  double rate_sum = 0.0, acp_sum = 0.0;
  for (int j = 0; j < num_pes(); ++j) {
    if (has_feedback(j)) {
      rate_sum += measured_rate(j);
      acp_sum += acpsa().get(j);
    }
  }
  const double kappa =
      (rate_sum > 0.0 && acp_sum > 0.0) ? rate_sum / acp_sum : 1.0;
  return acpsa().get(pe) * kappa;
}

void AwfScheduler::plan(Index /*remaining_total*/) {
  // Restart the current stage from the live remaining count; the
  // probe stage is not repeated on replans.
  stage_left_ = 0;
}

Index AwfScheduler::propose_chunk(int pe) {
  if (stage_left_ == 0) {
    const bool probe = stage_ == 0;
    stage_total_ = static_cast<double>(remaining()) /
                   (probe ? alpha_ * probe_factor_ : alpha_);
    stage_left_ = num_pes();
  }
  double wsum = 0.0;
  for (int j = 0; j < num_pes(); ++j) wsum += weight(j);
  LSS_ASSERT(wsum > 0.0, "total weight must be positive");
  const double share = stage_total_ * weight(pe) / wsum;
  return static_cast<Index>(std::ceil(share));
}

void AwfScheduler::on_granted(int /*pe*/, Index /*granted*/) {
  if (--stage_left_ == 0) ++stage_;
}

}  // namespace lss::distsched
