#include "lss/distsched/dist_scheme.hpp"

#include "lss/support/assert.hpp"

namespace lss::distsched {

DistScheduler::DistScheduler(Index total, int num_pes)
    : total_(total), num_pes_(num_pes), acpsa_(num_pes) {
  LSS_REQUIRE(total >= 0, "iteration count must be non-negative");
  LSS_REQUIRE(num_pes >= 1, "need at least one PE");
}

void DistScheduler::initialize(const std::vector<double>& initial_acps) {
  LSS_REQUIRE(!initialized_, "initialize() may only be called once");
  LSS_REQUIRE(static_cast<int>(initial_acps.size()) == num_pes_,
              "need one initial ACP per PE");
  double sum = 0.0;
  for (int pe = 0; pe < num_pes_; ++pe) {
    acpsa_.update(pe, initial_acps[static_cast<std::size_t>(pe)]);
    sum += initial_acps[static_cast<std::size_t>(pe)];
  }
  LSS_REQUIRE(sum > 0.0, "at least one PE must have positive ACP");
  acpsa_.mark_planned();
  plan(remaining());
  initialized_ = true;
}

Range DistScheduler::next(int pe, double acp) {
  LSS_REQUIRE(initialized_, "call initialize() before next()");
  LSS_REQUIRE(pe >= 0 && pe < num_pes_, "PE id out of range");
  LSS_REQUIRE(acp > 0.0, "unavailable PEs (A_i = 0) must not request work");
  if (done()) return Range{cursor_, cursor_};

  // Step 2a: store the newly received A_i if different; step 2c:
  // replan over the remaining iterations on majority change.
  acpsa_.update(pe, acp);
  if (replanning_ && acpsa_.majority_changed()) {
    acpsa_.mark_planned();
    plan(remaining());
    ++replans_;
  }

  Index chunk = propose_chunk(pe);
  if (chunk < 1) chunk = 1;
  if (chunk > remaining()) chunk = remaining();
  const Range granted{cursor_, cursor_ + chunk};
  cursor_ += chunk;
  ++steps_;
  on_granted(pe, chunk);
  return granted;
}

void DistScheduler::update_acp(const std::vector<double>& acps) {
  LSS_REQUIRE(initialized_, "call initialize() before update_acp()");
  LSS_REQUIRE(static_cast<int>(acps.size()) == num_pes_,
              "need one ACP per PE");
  double sum = 0.0;
  for (int pe = 0; pe < num_pes_; ++pe) {
    acpsa_.update(pe, acps[static_cast<std::size_t>(pe)]);
    sum += acps[static_cast<std::size_t>(pe)];
  }
  LSS_REQUIRE(sum > 0.0, "at least one PE must have positive ACP");
  acpsa_.mark_planned();
  plan(remaining());
  ++replans_;
}

void DistScheduler::on_granted(int /*pe*/, Index /*granted*/) {}

void DistScheduler::on_feedback(int /*pe*/, Index /*iterations*/,
                                double /*seconds*/) {}

}  // namespace lss::distsched
