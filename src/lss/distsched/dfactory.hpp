// Construction of distributed schemes by name.
//
// Spec grammar:  name[:key=value[,...]]
//   dtss | dfss[:alpha=2] | dfiss[:sigma=3,x=5] | dtfss |
//   awf[:alpha=2] | dist(<simple-spec>)   e.g. dist(gss:k=2)
//
// Free functions, mirroring sched/factory: the spec string is the
// portable representation, parsed fresh per construction.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lss/distsched/dist_scheme.hpp"

namespace lss::distsched {

/// Builds a distributed scheduler from `spec`. Throws
/// lss::ContractError on unknown names or malformed parameters,
/// naming the offender.
std::unique_ptr<DistScheduler> make_dist_scheme(std::string_view spec,
                                                Index total, int num_pes);

/// Parses without constructing. Throws exactly when make_dist_scheme
/// would.
void validate_dist_scheme(std::string_view spec);

/// Names of all distributed schemes the factory understands.
std::vector<std::string> known_dist_schemes();

}  // namespace lss::distsched
