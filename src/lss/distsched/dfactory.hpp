// Construction of distributed schemes by name.
//
// Spec grammar:  name[:key=value[,...]]
//   dtss | dfss[:alpha=2] | dfiss[:sigma=3,x=5] | dtfss |
//   awf[:alpha=2] | dist(<simple-spec>)   e.g. dist(gss:k=2)
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lss/distsched/dist_scheme.hpp"

namespace lss::distsched {

class DistSchemeSpec {
 public:
  static DistSchemeSpec parse(std::string_view spec);

  const std::string& kind() const { return kind_; }
  std::string spec_string() const { return spec_; }

  std::unique_ptr<DistScheduler> make(Index total, int num_pes) const;

  static std::vector<std::string> known_schemes();

 private:
  std::string kind_;
  std::string spec_;
  std::string inner_;  // for dist(...)
  double alpha_ = 2.0;
  int sigma_ = 3;
  int x_ = -1;
};

}  // namespace lss::distsched
