// Distributed Trapezoid Self-Scheduling (Xu & Chronopoulos 1999,
// reviewed in §3.1). The TSS trapezoid is computed with the total
// available power A in place of p; a requester with power A_i takes
// A_i consecutive unit-power slots of the trapezoid:
//
//   C_i = A_i * (F - D * (S_{i-1} + (A_i - 1) / 2))
//
// with S_{i-1} the cumulative power of all previous assignments.
// F and D are carried in double precision: with the paper's ×10
// decimal ACP scale an integer D would floor to 0 and flatten the
// trapezoid (DESIGN.md).
#pragma once

#include "lss/distsched/dist_scheme.hpp"
#include "lss/sched/tss.hpp"

namespace lss::distsched {

class DtssScheduler final : public DistScheduler {
 public:
  DtssScheduler(Index total, int num_pes);

  std::string name() const override { return "dtss"; }
  const sched::TssParams& params() const { return params_; }

 protected:
  void plan(Index remaining_total) override;
  Index propose_chunk(int pe) override;

 private:
  sched::TssParams params_;
  double consumed_slots_ = 0.0;  ///< S: power-slots already assigned
};

}  // namespace lss::distsched
