// ACP Status Array (paper §3.1, Master step 1a/2a/2c).
//
// The master stores the most recently reported A_i of every slave and
// replans (recomputes scheme parameters over the remaining
// iterations) when more than half of the entries changed since the
// last plan.
#pragma once

#include <vector>

#include "lss/support/types.hpp"

namespace lss::distsched {

class Acpsa {
 public:
  explicit Acpsa(int num_pes);

  int num_pes() const { return static_cast<int>(acp_.size()); }

  /// Record a report from `pe`; returns true if the value differs
  /// from the stored one.
  bool update(int pe, double acp);

  double get(int pe) const;
  /// A = sum of all A_i.
  double total() const;
  /// PEs with A_i > 0 (available for work).
  int num_available() const;

  /// Entries that differ from their value at the last mark_planned().
  int num_changed_since_plan() const;
  /// Paper step 2c: "more than half of the A_i's changed".
  bool majority_changed() const;
  /// Snapshot current values as the plan baseline.
  void mark_planned();

 private:
  std::vector<double> acp_;
  std::vector<double> at_plan_;
};

}  // namespace lss::distsched
