#include "lss/distsched/dfactory.hpp"

#include "lss/distsched/awf.hpp"
#include "lss/distsched/dfiss.hpp"
#include "lss/distsched/dfss.hpp"
#include "lss/distsched/dtfss.hpp"
#include "lss/distsched/dtss.hpp"
#include "lss/distsched/weighted_adapter.hpp"
#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss::distsched {

DistSchemeSpec DistSchemeSpec::parse(std::string_view spec) {
  DistSchemeSpec out;
  out.spec_ = std::string(trim(spec));
  LSS_REQUIRE(!out.spec_.empty(), "empty scheme spec");

  // dist(<simple-spec>) — generic adapter.
  if (out.spec_.rfind("dist(", 0) == 0) {
    LSS_REQUIRE(out.spec_.back() == ')', "dist(...) missing ')'");
    out.kind_ = "dist";
    out.inner_ = out.spec_.substr(5, out.spec_.size() - 6);
    sched::SchemeSpec::parse(out.inner_);  // validate eagerly
    return out;
  }

  const auto colon = out.spec_.find(':');
  out.kind_ = to_lower(trim(out.spec_.substr(0, colon)));

  const auto known = known_schemes();
  bool kind_ok = false;
  for (const std::string& name : known) kind_ok = kind_ok || name == out.kind_;
  LSS_REQUIRE(kind_ok, "unknown distributed scheme: '" + out.kind_ +
                           "'; known schemes: " + join(known, ", ") +
                           " — or dist(<simple-spec>)");

  if (colon != std::string::npos) {
    // Keys each distributed scheme consumes; anything else is a
    // misconfiguration, not a silent no-op.
    std::vector<std::string> accepted;
    if (out.kind_ == "dfss" || out.kind_ == "awf") accepted = {"alpha"};
    if (out.kind_ == "dfiss") accepted = {"sigma", "x"};
    for (const std::string& kv : split(out.spec_.substr(colon + 1), ',')) {
      const auto eq = kv.find('=');
      LSS_REQUIRE(eq != std::string::npos,
                  "malformed parameter (want key=value): '" + kv + "'");
      const std::string key = to_lower(trim(kv.substr(0, eq)));
      const std::string value{trim(kv.substr(eq + 1))};
      bool key_ok = false;
      for (const std::string& k : accepted) key_ok = key_ok || k == key;
      LSS_REQUIRE(key_ok,
                  "scheme '" + out.kind_ + "' does not accept parameter '" +
                      key + "'" +
                      (accepted.empty()
                           ? " (it takes no parameters)"
                           : " (accepts: " + join(accepted, ", ") + ")"));
      if (key == "alpha") {
        out.alpha_ = parse_double(value);
      } else if (key == "sigma") {
        out.sigma_ = static_cast<int>(parse_int(value));
      } else if (key == "x") {
        out.x_ = static_cast<int>(parse_int(value));
      }
    }
  }
  return out;
}

std::unique_ptr<DistScheduler> DistSchemeSpec::make(Index total,
                                                    int num_pes) const {
  if (kind_ == "dtss") return std::make_unique<DtssScheduler>(total, num_pes);
  if (kind_ == "dfss")
    return std::make_unique<DfssScheduler>(total, num_pes, alpha_);
  if (kind_ == "dfiss")
    return std::make_unique<DfissScheduler>(total, num_pes, sigma_, x_);
  if (kind_ == "dtfss")
    return std::make_unique<DtfssScheduler>(total, num_pes);
  if (kind_ == "awf")
    return std::make_unique<AwfScheduler>(total, num_pes, alpha_);
  if (kind_ == "dist")
    return std::make_unique<WeightedAdapterScheduler>(
        total, num_pes, sched::SchemeSpec::parse(inner_));
  LSS_ASSERT(false, "unreachable: kind validated in parse()");
  return nullptr;
}

std::vector<std::string> DistSchemeSpec::known_schemes() {
  return {"dtss", "dfss", "dfiss", "dtfss", "awf", "dist"};
}

}  // namespace lss::distsched
