#include "lss/distsched/dfactory.hpp"

#include "lss/distsched/awf.hpp"
#include "lss/distsched/dfiss.hpp"
#include "lss/distsched/dfss.hpp"
#include "lss/distsched/dtfss.hpp"
#include "lss/distsched/dtss.hpp"
#include "lss/distsched/weighted_adapter.hpp"
#include "lss/sched/factory.hpp"
#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss::distsched {

namespace {

struct Parsed {
  std::string kind;
  std::string inner;  // for dist(...)
  double alpha = 2.0;
  int sigma = 3;
  int x = -1;
};

Parsed parse(std::string_view spec) {
  Parsed out;
  const std::string s{trim(spec)};
  LSS_REQUIRE(!s.empty(), "empty scheme spec");

  // dist(<simple-spec>) — generic adapter.
  if (s.rfind("dist(", 0) == 0) {
    LSS_REQUIRE(s.back() == ')', "dist(...) missing ')'");
    out.kind = "dist";
    out.inner = s.substr(5, s.size() - 6);
    sched::validate_scheme(out.inner);  // validate eagerly
    return out;
  }

  const auto colon = s.find(':');
  out.kind = to_lower(trim(s.substr(0, colon)));

  const auto known = known_dist_schemes();
  bool kind_ok = false;
  for (const std::string& name : known) kind_ok = kind_ok || name == out.kind;
  LSS_REQUIRE(kind_ok, "unknown distributed scheme: '" + out.kind +
                           "'; known schemes: " + join(known, ", ") +
                           " — or dist(<simple-spec>)");

  if (colon != std::string::npos) {
    // Keys each distributed scheme consumes; anything else is a
    // misconfiguration, not a silent no-op.
    std::vector<std::string> accepted;
    if (out.kind == "dfss" || out.kind == "awf") accepted = {"alpha"};
    if (out.kind == "dfiss") accepted = {"sigma", "x"};
    for (const std::string& kv : split(s.substr(colon + 1), ',')) {
      const auto eq = kv.find('=');
      LSS_REQUIRE(eq != std::string::npos,
                  "malformed parameter (want key=value): '" + kv + "'");
      const std::string key = to_lower(trim(kv.substr(0, eq)));
      const std::string value{trim(kv.substr(eq + 1))};
      bool key_ok = false;
      for (const std::string& k : accepted) key_ok = key_ok || k == key;
      LSS_REQUIRE(key_ok,
                  "scheme '" + out.kind + "' does not accept parameter '" +
                      key + "'" +
                      (accepted.empty()
                           ? " (it takes no parameters)"
                           : " (accepts: " + join(accepted, ", ") + ")"));
      if (key == "alpha") {
        out.alpha = parse_double(value);
      } else if (key == "sigma") {
        out.sigma = static_cast<int>(parse_int(value));
      } else if (key == "x") {
        out.x = static_cast<int>(parse_int(value));
      }
    }
  }
  return out;
}

}  // namespace

std::unique_ptr<DistScheduler> make_dist_scheme(std::string_view spec,
                                                Index total, int num_pes) {
  const Parsed p = parse(spec);
  if (p.kind == "dtss") return std::make_unique<DtssScheduler>(total, num_pes);
  if (p.kind == "dfss")
    return std::make_unique<DfssScheduler>(total, num_pes, p.alpha);
  if (p.kind == "dfiss")
    return std::make_unique<DfissScheduler>(total, num_pes, p.sigma, p.x);
  if (p.kind == "dtfss")
    return std::make_unique<DtfssScheduler>(total, num_pes);
  if (p.kind == "awf")
    return std::make_unique<AwfScheduler>(total, num_pes, p.alpha);
  if (p.kind == "dist")
    return std::make_unique<WeightedAdapterScheduler>(total, num_pes,
                                                      p.inner);
  LSS_ASSERT(false, "unreachable: kind validated in parse()");
  return nullptr;
}

void validate_dist_scheme(std::string_view spec) { (void)parse(spec); }

std::vector<std::string> known_dist_schemes() {
  return {"dtss", "dfss", "dfiss", "dtfss", "awf", "dist"};
}

}  // namespace lss::distsched
