// Distributed Fixed Increase Self-Scheduling (paper §6):
//   SC_0 = floor(I / X),  B = ceil(2I(1 - sigma/X) / (sigma(sigma-1)))
//   SC_k = SC_{k-1} + B,  C_j = SC_k * A_j / A
// with the FISS convention that the final stage absorbs the residue.
#pragma once

#include "lss/distsched/dist_scheme.hpp"

namespace lss::distsched {

class DfissScheduler final : public DistScheduler {
 public:
  /// `stages` = sigma >= 1; `x` <= 0 selects X = sigma + 2.
  DfissScheduler(Index total, int num_pes, int stages = 3, int x = -1);

  std::string name() const override;
  int stages() const { return sigma_; }
  Index bump() const { return bump_; }

 protected:
  void plan(Index remaining_total) override;
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  int sigma_;
  int x_;
  Index first_total_ = 1;  ///< SC_0
  Index bump_ = 0;         ///< B
  int stage_ = 0;
  int stage_left_ = 0;
  double stage_total_ = 0.0;
};

}  // namespace lss::distsched
