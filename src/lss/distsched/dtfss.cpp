#include "lss/distsched/dtfss.hpp"

#include <cmath>

#include "lss/support/assert.hpp"

namespace lss::distsched {

DtfssScheduler::DtfssScheduler(Index total, int num_pes)
    : DistScheduler(total, num_pes) {}

void DtfssScheduler::plan(Index remaining_total) {
  // The stage totals follow the *simple* TFSS over p PEs (paper §6
  // modification (i): "Compute SC_k = sum_j C_j^TSS"); only the split
  // within a stage is power-weighted.
  params_ = sched::tss_params_integer(remaining_total, num_pes());
  tss_step_ = 0;
  stage_left_ = 0;
}

Index DtfssScheduler::propose_chunk(int pe) {
  if (stage_left_ == 0) {
    const int p = num_pes();
    double sum = 0.0;
    for (int j = 0; j < p; ++j)
      sum += params_.chunk_at(tss_step_ + j);
    tss_step_ += p;
    stage_total_ = sum;
    stage_left_ = p;
  }
  const double a = acpsa().total();
  LSS_ASSERT(a > 0.0, "total ACP must be positive");
  const double share = stage_total_ * acpsa().get(pe) / a;
  return static_cast<Index>(std::ceil(share));
}

void DtfssScheduler::on_granted(int /*pe*/, Index /*granted*/) {
  if (stage_left_ > 0) --stage_left_;
}

}  // namespace lss::distsched
