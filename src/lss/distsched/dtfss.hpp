// Distributed Trapezoid Factoring Self-Scheduling (paper §6) — the
// distributed version of the paper's new TFSS scheme:
//   SC_k = sum of the next p TSS chunks,  C_j = SC_k * A_j / A.
#pragma once

#include "lss/distsched/dist_scheme.hpp"
#include "lss/sched/tss.hpp"

namespace lss::distsched {

class DtfssScheduler final : public DistScheduler {
 public:
  DtfssScheduler(Index total, int num_pes);

  std::string name() const override { return "dtfss"; }
  const sched::TssParams& tss_params() const { return params_; }

 protected:
  void plan(Index remaining_total) override;
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  sched::TssParams params_;
  Index tss_step_ = 0;
  int stage_left_ = 0;
  double stage_total_ = 0.0;  ///< SC_k
};

}  // namespace lss::distsched
