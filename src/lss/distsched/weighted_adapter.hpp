// Generic distributed adapter (paper §6, opening remark): "any
// self-scheduling scheme discussed in section 2 can become a
// Master-Slave centralized distributed scheme".
//
// The adapter turns an arbitrary simple scheme into a distributed one
// by replaying the simple scheme's *stage totals* and splitting each
// stage by ACP. At every stage boundary it instantiates the simple
// scheme over the remaining iterations and sums the first p chunks
// that scheme would grant; that sum becomes SC_k and requesters get
// C_j = SC_k * A_j / A. For GSS/FSS-style schemes (which recompute
// from R anyway) this matches the hand-written distributed variants
// up to rounding.
#pragma once

#include <string>

#include "lss/distsched/dist_scheme.hpp"

namespace lss::distsched {

class WeightedAdapterScheduler final : public DistScheduler {
 public:
  /// `simple_spec` is the inner simple-scheme spec string (already
  /// validated by the factory), e.g. "gss:k=2".
  WeightedAdapterScheduler(Index total, int num_pes,
                           std::string simple_spec);

  std::string name() const override;

 protected:
  void plan(Index remaining_total) override;
  Index propose_chunk(int pe) override;
  void on_granted(int pe, Index granted) override;

 private:
  std::string simple_spec_;
  int stage_left_ = 0;
  double stage_total_ = 0.0;
};

}  // namespace lss::distsched
