#include "lss/cluster/load.hpp"

#include <limits>

#include "lss/support/assert.hpp"

namespace lss::cluster {

LoadScript::LoadScript(std::vector<LoadPhase> phases)
    : phases_(std::move(phases)) {
  for (const LoadPhase& ph : phases_) {
    LSS_REQUIRE(ph.end_s > ph.start_s, "load phase must have positive length");
    LSS_REQUIRE(ph.processes >= 1, "load phase needs at least one process");
  }
}

LoadScript LoadScript::constant(int processes) {
  LSS_REQUIRE(processes >= 0, "negative process count");
  if (processes == 0) return LoadScript{};
  return LoadScript({LoadPhase{0.0, std::numeric_limits<double>::infinity(),
                               processes}});
}

int LoadScript::external_at(double t) const {
  int n = 0;
  for (const LoadPhase& ph : phases_)
    if (t >= ph.start_s && t < ph.end_s) n += ph.processes;
  return n;
}

int LoadScript::run_queue_at(double t) const { return 1 + external_at(t); }

double LoadScript::next_change_after(double t) const {
  double next = std::numeric_limits<double>::infinity();
  for (const LoadPhase& ph : phases_) {
    if (ph.start_s > t && ph.start_s < next) next = ph.start_s;
    if (ph.end_s > t && ph.end_s < next) next = ph.end_s;
  }
  return next;
}

LoadScripts paper_nondedicated_loads(int p, int processes_per_node) {
  LSS_REQUIRE(processes_per_node >= 1, "need at least one process");
  LoadScripts out(static_cast<std::size_t>(p));
  const auto overload = [&](int slave) {
    LSS_REQUIRE(slave >= 0 && slave < p, "slave index out of range");
    out[static_cast<std::size_t>(slave)] =
        LoadScript::constant(processes_per_node);
  };
  switch (p) {
    case 1:
      overload(0);  // the single fast PE
      break;
    case 2:
      overload(0);  // 1 fast
      overload(1);  // 1 slow
      break;
    case 4:
      overload(0);  // 1 fast (of 2)
      overload(2);  // 1 slow (of 2)
      break;
    case 8:
      overload(0);  // 1 fast (of 3)
      overload(3);  // 3 slow (of 5)
      overload(4);
      overload(5);
      break;
    default:
      LSS_REQUIRE(false, "paper load placements exist for p in {1,2,4,8}");
  }
  return out;
}

}  // namespace lss::cluster
