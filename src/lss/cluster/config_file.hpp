// Cluster description files — so experiments can be configured
// without recompiling. Line-oriented format, '#' comments:
//
//   # the paper's testbed
//   master bandwidth=100Mbit latency=1ms
//   node ultra10-1 speed=3e6 power=3 bandwidth=100Mbit latency=1ms
//   node ultra1-1  speed=1e6 power=1 bandwidth=10Mbit
//   load ultra1-1  start=0 end=inf processes=2
//   crash ultra10-1 at=5.0
//
// Bandwidth accepts Gbit/Mbit/Kbit/bit (per second) or plain
// bytes-per-second; times accept s/ms/us suffixes. Nodes appear in
// file order; loads/crashes refer to nodes by name.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "lss/cluster/cluster.hpp"
#include "lss/cluster/load.hpp"

namespace lss::cluster {

struct ClusterConfig {
  ClusterSpec cluster;
  LoadScripts loads;                 ///< one per node (possibly empty scripts)
  std::vector<double> crash_at_s;    ///< one per node; +inf = never
  double master_bandwidth_bps = 100e6 / 8.0;
  double master_latency_s = 1e-3;

  bool has_loads() const;
  bool has_crashes() const;
};

/// Parses a config; throws lss::ContractError with a line number on
/// malformed input.
ClusterConfig parse_cluster_config(std::istream& in);
ClusterConfig parse_cluster_config_string(std::string_view text);
ClusterConfig load_cluster_config(const std::string& path);

/// Unit helpers (exposed for tests).
double parse_bandwidth(std::string_view text);  ///< -> bytes per second
double parse_duration(std::string_view text);   ///< -> seconds ("inf" ok)

}  // namespace lss::cluster
