// Heterogeneous cluster description (§3, §5.1 of the paper).
//
// A cluster is a master plus p slave nodes. Each slave has a compute
// speed (basic operations per second — the unit Workload::cost is
// measured in), a network link to the master (latency + bandwidth),
// and a *virtual power* V_i: its relative speed with V_i = 1 for the
// slowest machine. The paper's testbed had two machine classes
// (UltraSPARC-10/440MHz/100Mbit vs UltraSPARC-1/166MHz/10Mbit).
#pragma once

#include <string>
#include <vector>

#include "lss/support/types.hpp"

namespace lss::cluster {

struct LinkSpec {
  double bandwidth_bps = 100e6 / 8.0;  ///< bytes per second
  double latency_s = 1e-3;             ///< one-way message latency

  /// Time to push `bytes` through the link (excluding latency).
  double transfer_time(double bytes) const;
};

struct NodeSpec {
  std::string hostname;
  double speed = 1.0;  ///< basic operations per (simulated) second
  double virtual_power = 1.0;  ///< V_i, relative to the slowest PE
  LinkSpec link;
};

class ClusterSpec {
 public:
  ClusterSpec() = default;
  explicit ClusterSpec(std::vector<NodeSpec> slaves);

  int num_slaves() const { return static_cast<int>(slaves_.size()); }
  const NodeSpec& slave(int i) const;
  const std::vector<NodeSpec>& slaves() const { return slaves_; }

  /// V = sum of virtual powers.
  double total_virtual_power() const;
  /// Virtual powers as a weight vector (for WF / weighted TreeS).
  std::vector<double> virtual_powers() const;
  /// Fastest slave's speed (used as the serial-time reference).
  double max_speed() const;

  /// Normalizes virtual powers so the slowest PE has V_i = 1.
  void normalize_virtual_powers();

 private:
  std::vector<NodeSpec> slaves_;
};

/// Builders -----------------------------------------------------------

/// `p` identical slaves.
ClusterSpec homogeneous_cluster(int p, double speed = 1.0e6,
                                double bandwidth_bps = 100e6 / 8.0,
                                double latency_s = 1e-3);

/// The paper's testbed shape: `fast` UltraSPARC-10-class slaves
/// (speed ratio ~3:1 vs slow, 100 Mbit links) followed by `slow`
/// UltraSPARC-1-class slaves (10 Mbit links). `slow_speed` is in
/// basic ops per second.
ClusterSpec paper_cluster(int fast, int slow, double slow_speed = 1.0e6,
                          double speed_ratio = 3.0);

/// The exact p-slave configurations used in the paper's speedup plots:
/// p=1: 1 fast; p=2: 1 fast + 1 slow; p=4: 2 fast + 2 slow;
/// p=8: 3 fast + 5 slow.
ClusterSpec paper_cluster_for_p(int p, double slow_speed = 1.0e6,
                                double speed_ratio = 3.0);

}  // namespace lss::cluster
