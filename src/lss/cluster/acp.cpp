#include "lss/cluster/acp.hpp"

#include <cmath>

#include "lss/support/assert.hpp"

namespace lss::cluster {

double compute_acp(double virtual_power, int run_queue, const AcpPolicy& p) {
  LSS_REQUIRE(virtual_power > 0.0, "virtual power must be positive");
  LSS_REQUIRE(run_queue >= 1, "run queue length must be at least 1");
  LSS_REQUIRE(p.scale > 0.0, "ACP scale must be positive");
  const double ratio = virtual_power / static_cast<double>(run_queue);
  double a = 0.0;
  switch (p.mode) {
    case AcpMode::Integer:
      a = std::floor(ratio);
      break;
    case AcpMode::DecimalScaled:
      a = std::floor(p.scale * ratio);
      break;
    case AcpMode::Exact:
      // Same scale as DecimalScaled (the scale cancels in A_j / A),
      // but without the floor.
      a = p.scale * ratio;
      break;
  }
  if (a < p.a_min) return 0.0;
  return a;
}

bool is_available(double virtual_power, int run_queue, const AcpPolicy& p) {
  return compute_acp(virtual_power, run_queue, p) > 0.0;
}

std::string to_string(AcpMode mode) {
  switch (mode) {
    case AcpMode::Integer:
      return "integer";
    case AcpMode::DecimalScaled:
      return "decimal";
    case AcpMode::Exact:
      return "exact";
  }
  return "?";
}

}  // namespace lss::cluster
