#include "lss/cluster/cluster.hpp"

#include <algorithm>

#include "lss/support/assert.hpp"

namespace lss::cluster {

double LinkSpec::transfer_time(double bytes) const {
  LSS_REQUIRE(bytes >= 0.0, "negative message size");
  return bytes / bandwidth_bps;
}

ClusterSpec::ClusterSpec(std::vector<NodeSpec> slaves)
    : slaves_(std::move(slaves)) {
  for (const NodeSpec& n : slaves_) {
    LSS_REQUIRE(n.speed > 0.0, "node speed must be positive");
    LSS_REQUIRE(n.virtual_power > 0.0, "virtual power must be positive");
    LSS_REQUIRE(n.link.bandwidth_bps > 0.0, "bandwidth must be positive");
    LSS_REQUIRE(n.link.latency_s >= 0.0, "latency must be non-negative");
  }
}

const NodeSpec& ClusterSpec::slave(int i) const {
  LSS_REQUIRE(i >= 0 && i < num_slaves(), "slave index out of range");
  return slaves_[static_cast<std::size_t>(i)];
}

double ClusterSpec::total_virtual_power() const {
  double v = 0.0;
  for (const NodeSpec& n : slaves_) v += n.virtual_power;
  return v;
}

std::vector<double> ClusterSpec::virtual_powers() const {
  std::vector<double> out;
  out.reserve(slaves_.size());
  for (const NodeSpec& n : slaves_) out.push_back(n.virtual_power);
  return out;
}

double ClusterSpec::max_speed() const {
  double m = 0.0;
  for (const NodeSpec& n : slaves_) m = std::max(m, n.speed);
  return m;
}

void ClusterSpec::normalize_virtual_powers() {
  if (slaves_.empty()) return;
  double vmin = slaves_.front().virtual_power;
  for (const NodeSpec& n : slaves_) vmin = std::min(vmin, n.virtual_power);
  LSS_ASSERT(vmin > 0.0, "virtual powers must stay positive");
  for (NodeSpec& n : slaves_) n.virtual_power /= vmin;
}

ClusterSpec homogeneous_cluster(int p, double speed, double bandwidth_bps,
                                double latency_s) {
  LSS_REQUIRE(p >= 1, "need at least one slave");
  std::vector<NodeSpec> nodes;
  nodes.reserve(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    NodeSpec n;
    n.hostname = "node" + std::to_string(i + 1);
    n.speed = speed;
    n.virtual_power = 1.0;
    n.link.bandwidth_bps = bandwidth_bps;
    n.link.latency_s = latency_s;
    nodes.push_back(n);
  }
  return ClusterSpec(std::move(nodes));
}

ClusterSpec paper_cluster(int fast, int slow, double slow_speed,
                          double speed_ratio) {
  LSS_REQUIRE(fast >= 0 && slow >= 0 && fast + slow >= 1,
              "need at least one slave");
  LSS_REQUIRE(slow_speed > 0.0 && speed_ratio >= 1.0,
              "bad speed parameters");
  std::vector<NodeSpec> nodes;
  nodes.reserve(static_cast<std::size_t>(fast + slow));
  for (int i = 0; i < fast; ++i) {
    NodeSpec n;
    n.hostname = "ultra10-" + std::to_string(i + 1);
    n.speed = slow_speed * speed_ratio;
    n.virtual_power = speed_ratio;
    n.link.bandwidth_bps = 100e6 / 8.0;  // 100 Mbit/s
    n.link.latency_s = 1e-3;
    nodes.push_back(n);
  }
  for (int i = 0; i < slow; ++i) {
    NodeSpec n;
    n.hostname = "ultra1-" + std::to_string(i + 1);
    n.speed = slow_speed;
    n.virtual_power = 1.0;
    n.link.bandwidth_bps = 10e6 / 8.0;  // 10 Mbit/s
    n.link.latency_s = 1e-3;
    nodes.push_back(n);
  }
  return ClusterSpec(std::move(nodes));
}

ClusterSpec paper_cluster_for_p(int p, double slow_speed,
                                double speed_ratio) {
  switch (p) {
    case 1:
      return paper_cluster(1, 0, slow_speed, speed_ratio);
    case 2:
      return paper_cluster(1, 1, slow_speed, speed_ratio);
    case 4:
      return paper_cluster(2, 2, slow_speed, speed_ratio);
    case 8:
      return paper_cluster(3, 5, slow_speed, speed_ratio);
    default:
      LSS_REQUIRE(false, "paper configurations exist for p in {1,2,4,8}");
  }
  return ClusterSpec{};
}

}  // namespace lss::cluster
