// Available Computing Power (§3.1 and the paper's §5.2 improvements).
//
// DTSS's original model:      A_i = floor(V_i / Q_i)   (integer)
// Paper's improved model:     A_i = floor(scale * V_i / Q_i)
// with decimal division, a scale factor (e.g. 10), and an optional
// availability threshold A_min below which a PE is excluded.
//
// The integer model can starve whole clusters (V=1,Q=2 and V=3,Q=3
// both floor to 0); the decimal model keeps loaded PEs usable and
// represents fractional virtual powers (V = 3.4) faithfully.
#pragma once

#include <string>

#include "lss/support/types.hpp"

namespace lss::cluster {

enum class AcpMode {
  Integer,        ///< original DTSS: floor(V/Q), scale ignored
  DecimalScaled,  ///< paper §5.2: floor(scale * V/Q)
  Exact,          ///< un-floored V/Q (idealized reference)
};

struct AcpPolicy {
  AcpMode mode = AcpMode::DecimalScaled;
  double scale = 10.0;  ///< used by DecimalScaled
  double a_min = 0.0;   ///< PEs with A_i < a_min are unavailable

  static AcpPolicy original_dtss() { return {AcpMode::Integer, 1.0, 1.0}; }
  static AcpPolicy improved(double scale = 10.0, double a_min = 1.0) {
    return {AcpMode::DecimalScaled, scale, a_min};
  }
};

/// A_i for a PE with virtual power V and run-queue length Q (>= 1).
/// Returns 0 when the PE falls below the policy's a_min (unavailable).
double compute_acp(double virtual_power, int run_queue, const AcpPolicy& p);

/// True when compute_acp(...) > 0, i.e. the PE may request work.
bool is_available(double virtual_power, int run_queue, const AcpPolicy& p);

std::string to_string(AcpMode mode);

}  // namespace lss::cluster
