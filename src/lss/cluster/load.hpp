// External load model for non-dedicated runs (§3.1, §5.1).
//
// The paper overloads some slaves by launching CPU-bound processes
// (random-matrix additions). We model this as a per-node *load
// script*: a piecewise-constant count of external processes over
// time. The run queue length is Q(t) = 1 + external(t) (our loop
// process plus the externals), and a CPU-bound process receives a
// 1/Q(t) share of the processor (the paper's equal-share assumption).
#pragma once

#include <vector>

#include "lss/support/types.hpp"

namespace lss::cluster {

/// [start, end) interval during which `processes` external CPU-bound
/// processes run on the node.
struct LoadPhase {
  double start_s = 0.0;
  double end_s = 0.0;
  int processes = 0;
};

class LoadScript {
 public:
  LoadScript() = default;
  /// Phases may overlap; the external count at time t is the sum of
  /// all phases covering t.
  explicit LoadScript(std::vector<LoadPhase> phases);

  /// A constant load of `processes` for the whole run.
  static LoadScript constant(int processes);
  static LoadScript none() { return LoadScript{}; }

  /// Number of external processes at time t.
  int external_at(double t) const;
  /// Run-queue length Q(t) = 1 + external_at(t); always >= 1.
  int run_queue_at(double t) const;

  /// Earliest time strictly greater than t at which the external
  /// count changes; +infinity if it never changes again.
  double next_change_after(double t) const;

  bool empty() const { return phases_.empty(); }
  const std::vector<LoadPhase>& phases() const { return phases_; }

 private:
  std::vector<LoadPhase> phases_;
};

/// Per-slave load scripts; index matches ClusterSpec::slave.
using LoadScripts = std::vector<LoadScript>;

/// The paper's non-dedicated placements: two external processes on
/// the overloaded slaves. Slave ids refer to paper_cluster_for_p(p)
/// order (fast PEs first). p=1: fast#0; p=2: fast#0 + slow#1;
/// p=4: fast#0 + slow#2; p=8: fast#0 + slow#3,4,5.
LoadScripts paper_nondedicated_loads(int p, int processes_per_node = 2);

}  // namespace lss::cluster
