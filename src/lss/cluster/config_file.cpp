#include "lss/cluster/config_file.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "lss/support/assert.hpp"
#include "lss/support/strings.hpp"

namespace lss::cluster {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  LSS_REQUIRE(false, "cluster config line " + std::to_string(line) + ": " +
                         msg);
  std::abort();  // unreachable; LSS_REQUIRE(false, ...) throws
}

/// Splits "key=value" tokens of a line after the leading words.
std::map<std::string, std::string> parse_kv(
    const std::vector<std::string>& tokens, std::size_t first, int line) {
  std::map<std::string, std::string> out;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
      fail(line, "expected key=value, got '" + tok + "'");
    const std::string key = to_lower(trim(tok.substr(0, eq)));
    const std::string value{trim(tok.substr(eq + 1))};
    if (out.count(key) != 0) fail(line, "duplicate key '" + key + "'");
    out[key] = value;
  }
  return out;
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

double parse_bandwidth(std::string_view text) {
  const std::string s = to_lower(trim(text));
  struct Unit {
    const char* suffix;
    double bits_multiplier;
  };
  static constexpr Unit kUnits[] = {
      {"gbit", 1e9}, {"mbit", 1e6}, {"kbit", 1e3}, {"bit", 1.0}};
  for (const Unit& u : kUnits) {
    if (ends_with(s, u.suffix)) {
      const double v =
          parse_double(s.substr(0, s.size() - std::string(u.suffix).size()));
      LSS_REQUIRE(v > 0.0, "bandwidth must be positive");
      return v * u.bits_multiplier / 8.0;  // bits/s -> bytes/s
    }
  }
  const double v = parse_double(s);  // plain bytes per second
  LSS_REQUIRE(v > 0.0, "bandwidth must be positive");
  return v;
}

double parse_duration(std::string_view text) {
  const std::string s = to_lower(trim(text));
  if (s == "inf" || s == "never")
    return std::numeric_limits<double>::infinity();
  struct Unit {
    const char* suffix;
    double seconds;
  };
  static constexpr Unit kUnits[] = {{"us", 1e-6}, {"ms", 1e-3}, {"s", 1.0}};
  for (const Unit& u : kUnits) {
    if (ends_with(s, u.suffix)) {
      const std::string head{
          s.substr(0, s.size() - std::string(u.suffix).size())};
      // Avoid treating the exponent of "2e-3" as a unit.
      if (!head.empty() &&
          (std::isdigit(static_cast<unsigned char>(head.back())) != 0 ||
           head.back() == '.')) {
        return parse_double(head) * u.seconds;
      }
    }
  }
  return parse_double(s);  // plain seconds
}

bool ClusterConfig::has_loads() const {
  for (const LoadScript& l : loads)
    if (!l.empty()) return true;
  return false;
}

bool ClusterConfig::has_crashes() const {
  for (double t : crash_at_s)
    if (t < std::numeric_limits<double>::infinity()) return true;
  return false;
}

ClusterConfig parse_cluster_config(std::istream& in) {
  std::vector<NodeSpec> nodes;
  std::map<std::string, int> node_index;
  std::vector<std::vector<LoadPhase>> phases;
  std::vector<double> crashes;
  double master_bw = 100e6 / 8.0;
  double master_lat = 1e-3;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;
    const auto tokens = tokenize(line);
    const std::string kind = to_lower(tokens[0]);

    if (kind == "master") {
      const auto kv = parse_kv(tokens, 1, line_no);
      for (const auto& [key, value] : kv) {
        if (key == "bandwidth") master_bw = parse_bandwidth(value);
        else if (key == "latency") master_lat = parse_duration(value);
        else fail(line_no, "unknown master key '" + key + "'");
      }
    } else if (kind == "node") {
      if (tokens.size() < 2) fail(line_no, "node needs a name");
      const std::string name = tokens[1];
      if (node_index.count(name) != 0)
        fail(line_no, "duplicate node '" + name + "'");
      NodeSpec n;
      n.hostname = name;
      const auto kv = parse_kv(tokens, 2, line_no);
      for (const auto& [key, value] : kv) {
        if (key == "speed") n.speed = parse_double(value);
        else if (key == "power") n.virtual_power = parse_double(value);
        else if (key == "bandwidth") n.link.bandwidth_bps = parse_bandwidth(value);
        else if (key == "latency") n.link.latency_s = parse_duration(value);
        else fail(line_no, "unknown node key '" + key + "'");
      }
      node_index[name] = static_cast<int>(nodes.size());
      nodes.push_back(n);
      phases.emplace_back();
      crashes.push_back(std::numeric_limits<double>::infinity());
    } else if (kind == "load") {
      if (tokens.size() < 2) fail(line_no, "load needs a node name");
      const auto it = node_index.find(tokens[1]);
      if (it == node_index.end())
        fail(line_no, "unknown node '" + tokens[1] + "'");
      LoadPhase ph;
      ph.start_s = 0.0;
      ph.end_s = std::numeric_limits<double>::infinity();
      ph.processes = 1;
      const auto kv = parse_kv(tokens, 2, line_no);
      for (const auto& [key, value] : kv) {
        if (key == "start") ph.start_s = parse_duration(value);
        else if (key == "end") ph.end_s = parse_duration(value);
        else if (key == "processes")
          ph.processes = static_cast<int>(parse_int(value));
        else fail(line_no, "unknown load key '" + key + "'");
      }
      if (!(ph.end_s > ph.start_s))
        fail(line_no, "load phase must have positive length");
      phases[static_cast<std::size_t>(it->second)].push_back(ph);
    } else if (kind == "crash") {
      if (tokens.size() < 2) fail(line_no, "crash needs a node name");
      const auto it = node_index.find(tokens[1]);
      if (it == node_index.end())
        fail(line_no, "unknown node '" + tokens[1] + "'");
      const auto kv = parse_kv(tokens, 2, line_no);
      const auto at = kv.find("at");
      if (at == kv.end()) fail(line_no, "crash needs at=<time>");
      crashes[static_cast<std::size_t>(it->second)] =
          parse_duration(at->second);
    } else {
      fail(line_no, "unknown directive '" + kind + "'");
    }
  }

  LSS_REQUIRE(!nodes.empty(), "cluster config defines no nodes");
  ClusterConfig out;
  out.cluster = ClusterSpec(std::move(nodes));
  out.loads.reserve(phases.size());
  for (auto& ph : phases) out.loads.emplace_back(std::move(ph));
  out.crash_at_s = std::move(crashes);
  out.master_bandwidth_bps = master_bw;
  out.master_latency_s = master_lat;
  return out;
}

ClusterConfig parse_cluster_config_string(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse_cluster_config(in);
}

ClusterConfig load_cluster_config(const std::string& path) {
  std::ifstream in(path);
  LSS_REQUIRE(in.good(), "cannot open cluster config: " + path);
  return parse_cluster_config(in);
}

}  // namespace lss::cluster
